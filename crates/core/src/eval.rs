//! Scoring match sets against simulator ground truth.
//!
//! On production metadata the paper cannot know which transfers a job
//! *really* caused; it argues validity qualitatively ("many of the matches
//! identified through RM1 or RM2 show strong evidential validity", §4.3).
//! The simulator knows: every transfer record carries its true cause in
//! `gt_pandaid`. This module turns that into precision/recall for each
//! strategy — the quantitative evaluation the paper could not run, and the
//! natural acceptance test for any relaxation: RM1/RM2 should add recall
//! without collapsing precision.

use crate::matcher::job_universe;
use crate::matchset::MatchSet;
use dmsa_metastore::MetaStore;
use dmsa_simcore::interval::Interval;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Precision/recall scores for one match set.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct MatchEvaluation {
    /// Matched (job, transfer) pairs.
    pub n_pairs: usize,
    /// Pairs whose transfer was truly caused by that job.
    pub n_correct_pairs: usize,
    /// Distinct ground-truth-caused transfers recovered.
    pub n_recovered_transfers: usize,
    /// Ground-truth-caused transfers present in the store (the recall
    /// denominator).
    pub n_gt_transfers: usize,
    /// Jobs matched with at least one correct transfer.
    pub n_correct_jobs: usize,
    /// Jobs matched at all.
    pub n_matched_jobs: usize,
    /// Universe jobs that truly caused at least one surviving transfer.
    pub n_gt_jobs: usize,
}

impl MatchEvaluation {
    /// Pair-level precision.
    pub fn transfer_precision(&self) -> f64 {
        ratio(self.n_correct_pairs, self.n_pairs)
    }

    /// Transfer-level recall.
    pub fn transfer_recall(&self) -> f64 {
        ratio(self.n_recovered_transfers, self.n_gt_transfers)
    }

    /// Job-level precision.
    pub fn job_precision(&self) -> f64 {
        ratio(self.n_correct_jobs, self.n_matched_jobs)
    }

    /// Job-level recall.
    pub fn job_recall(&self) -> f64 {
        ratio(self.n_correct_jobs, self.n_gt_jobs)
    }

    /// Harmonic mean of transfer precision and recall.
    pub fn transfer_f1(&self) -> f64 {
        let p = self.transfer_precision();
        let r = self.transfer_recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        // Vacuous: nothing to find ⇒ perfect score, not NaN.
        1.0
    } else {
        num as f64 / den as f64
    }
}

/// Score `set` against ground truth, over the same `window` the matcher
/// ran with.
pub fn evaluate(store: &MetaStore, set: &MatchSet, window: Interval) -> MatchEvaluation {
    let universe = job_universe(store, window);
    let pandaid_of: HashMap<u64, u32> = universe
        .iter()
        .map(|&j| (store.jobs[j as usize].pandaid, j))
        .collect();

    // Ground truth: transfers caused by universe jobs.
    let mut gt_jobs: HashSet<u64> = HashSet::new();
    let mut n_gt_transfers = 0usize;
    for t in &store.transfers {
        if let Some(p) = t.gt_pandaid {
            if pandaid_of.contains_key(&p) {
                n_gt_transfers += 1;
                gt_jobs.insert(p);
            }
        }
    }

    let mut eval = MatchEvaluation {
        n_gt_transfers,
        n_gt_jobs: gt_jobs.len(),
        n_matched_jobs: set.jobs.len(),
        ..Default::default()
    };

    let mut recovered: HashSet<u32> = HashSet::new();
    for mj in &set.jobs {
        let pandaid = store.jobs[mj.job_idx as usize].pandaid;
        let mut any_correct = false;
        for &ti in &mj.transfers {
            eval.n_pairs += 1;
            let t = &store.transfers[ti as usize];
            if t.gt_pandaid == Some(pandaid) {
                eval.n_correct_pairs += 1;
                any_correct = true;
                recovered.insert(ti);
            }
        }
        if any_correct {
            eval.n_correct_jobs += 1;
        }
    }
    eval.n_recovered_transfers = recovered.len();
    eval
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::testutil::StoreBuilder;
    use crate::matcher::{Matcher, NaiveMatcher};
    use crate::method::MatchMethod;

    #[test]
    fn clean_store_scores_perfectly() {
        let mut b = StoreBuilder::new();
        let site = b.site("SITE-A");
        for i in 0..20u64 {
            b.job_with_file(i, 100 + i, site, 1_000 + i, 0, 50, 100);
            b.download(i, 100 + i, site, site, 1_000 + i, 5, 20);
        }
        let w = b.window();
        let set = NaiveMatcher.match_jobs(&b.store, w, MatchMethod::Exact);
        let e = evaluate(&b.store, &set, w);
        assert_eq!(e.n_matched_jobs, 20);
        assert_eq!(e.transfer_precision(), 1.0);
        assert_eq!(e.transfer_recall(), 1.0);
        assert_eq!(e.job_precision(), 1.0);
        assert_eq!(e.job_recall(), 1.0);
        assert_eq!(e.transfer_f1(), 1.0);
    }

    #[test]
    fn unmatched_gt_transfers_lower_recall() {
        let mut b = StoreBuilder::new();
        let site = b.site("SITE-A");
        b.job_with_file(1, 10, site, 1_000, 0, 50, 100);
        let t = b.download(1, 10, site, site, 1_000, 5, 20);
        // Corrupt the transfer so matching fails but ground truth remains.
        b.store.transfers[t as usize].jeditaskid = None;
        let w = b.window();
        let set = NaiveMatcher.match_jobs(&b.store, w, MatchMethod::Rm2);
        let e = evaluate(&b.store, &set, w);
        assert_eq!(e.n_matched_jobs, 0);
        assert_eq!(e.n_gt_transfers, 1);
        assert_eq!(e.transfer_recall(), 0.0);
        assert_eq!(e.job_recall(), 0.0);
        // Precision is vacuously perfect.
        assert_eq!(e.transfer_precision(), 1.0);
    }

    #[test]
    fn false_positive_pairs_lower_precision() {
        let mut b = StoreBuilder::new();
        let site = b.site("SITE-A");
        // Two jobs in the SAME task reading files with identical keys —
        // the ambiguity that creates matcher false positives.
        b.job_with_file(1, 10, site, 1_000, 0, 50, 100);
        b.job_with_file(2, 10, site, 1_000, 0, 60, 120);
        // Make both jobs' file rows share one LFN.
        let lfn = b.store.files[0].lfn;
        b.store.files[1].lfn = lfn;
        // One real transfer, caused by job 1.
        let t = b.download(1, 10, site, site, 1_000, 5, 20);
        b.store.transfers[t as usize].lfn = lfn;
        let w = b.window();
        let set = NaiveMatcher.match_jobs(&b.store, w, MatchMethod::Rm1);
        let e = evaluate(&b.store, &set, w);
        // Both jobs match the single transfer; only one pairing is true.
        assert_eq!(e.n_pairs, 2);
        assert_eq!(e.n_correct_pairs, 1);
        assert!((e.transfer_precision() - 0.5).abs() < 1e-12);
        assert_eq!(e.n_recovered_transfers, 1);
    }

    #[test]
    fn empty_everything_is_vacuously_perfect() {
        let store = dmsa_metastore::MetaStore::new();
        let w = Interval::new(
            dmsa_simcore::SimTime::EPOCH,
            dmsa_simcore::SimTime::from_days(1),
        );
        let set = MatchSet {
            method: MatchMethod::Exact,
            jobs: vec![],
        };
        let e = evaluate(&store, &set, w);
        assert_eq!(e.transfer_precision(), 1.0);
        assert_eq!(e.transfer_recall(), 1.0);
    }
}
