//! String interning.
//!
//! Job, file, and transfer records reference the same site names, LFNs,
//! dataset names, and scopes millions of times. Interning maps each
//! distinct string to a dense [`Sym`] so records stay compact and
//! string-equality joins become integer comparisons.
//!
//! The table stores every string exactly once: the dense `Vec<String>`
//! owns the data and an open-addressing index of `u32` symbol ids (hashed
//! with the in-tree [fx hasher](crate::fx)) points back into it. The old
//! implementation kept a second copy of each string as a `HashMap` key,
//! doubling resident string memory for a full-scale campaign.

use crate::fx;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// Interned string handle.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Sym(pub u32);

/// Sentinel for an empty index slot (`Sym` ids are bounded far below it).
const EMPTY: u32 = u32::MAX;

/// Append-only interning table.
///
/// `Sym(0)` is always the reserved `"UNKNOWN"` sentinel that production
/// metadata uses for unidentified sites (paper §3.2: "the 102nd site is
/// labeled as *unknown*, aggregating all transfers with either an
/// unidentified source or destination").
#[derive(Clone, Debug)]
pub struct SymbolTable {
    /// Single owner of every interned string, dense in symbol order.
    strings: Vec<String>,
    /// Open-addressing (linear-probe) index of symbol ids; slot choice is
    /// the fx hash of the string. Power-of-two length, `EMPTY` = vacant.
    slots: Vec<u32>,
}

impl SymbolTable {
    /// The reserved unknown-site symbol.
    pub const UNKNOWN: Sym = Sym(0);

    /// New table containing only the `"UNKNOWN"` sentinel.
    pub fn new() -> Self {
        let mut t = SymbolTable {
            strings: Vec::new(),
            slots: vec![EMPTY; 16],
        };
        let u = t.intern("UNKNOWN");
        debug_assert_eq!(u, Self::UNKNOWN);
        t
    }

    /// Intern `s`, returning its symbol (existing or fresh).
    pub fn intern(&mut self, s: &str) -> Sym {
        // Keep the probe chain shorter than 1/8 of the table: grow at 7/8
        // occupancy *before* probing so the insert slot stays valid.
        if (self.strings.len() + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = fx::hash_bytes(s.as_bytes()) as usize & mask;
        loop {
            match self.slots[i] {
                EMPTY => break,
                id if self.strings[id as usize] == s => return Sym(id),
                _ => i = (i + 1) & mask,
            }
        }
        let id = self.strings.len() as u32;
        debug_assert!(id < EMPTY, "symbol table overflow");
        self.strings.push(s.to_string());
        self.slots[i] = id;
        Sym(id)
    }

    /// Resolve a symbol back to its string.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.strings[sym.0 as usize]
    }

    /// Look up without interning.
    pub fn get(&self, s: &str) -> Option<Sym> {
        let mask = self.slots.len() - 1;
        let mut i = fx::hash_bytes(s.as_bytes()) as usize & mask;
        loop {
            match self.slots[i] {
                EMPTY => return None,
                id if self.strings[id as usize] == s => return Some(Sym(id)),
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// Number of distinct strings (including the sentinel).
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Only the sentinel present?
    pub fn is_empty(&self) -> bool {
        self.strings.len() <= 1
    }

    /// Double the index and re-home every symbol id.
    fn grow(&mut self) {
        let cap = (self.slots.len() * 2).max(16);
        self.slots.clear();
        self.slots.resize(cap, EMPTY);
        let mask = cap - 1;
        for (id, s) in self.strings.iter().enumerate() {
            let mut i = fx::hash_bytes(s.as_bytes()) as usize & mask;
            while self.slots[i] != EMPTY {
                i = (i + 1) & mask;
            }
            self.slots[i] = id as u32;
        }
    }
}

/// Two tables are equal when they intern the same strings in the same
/// order; the probe index is derived state and is ignored.
impl PartialEq for SymbolTable {
    fn eq(&self, other: &Self) -> bool {
        self.strings == other.strings
    }
}

impl Eq for SymbolTable {}

impl Default for SymbolTable {
    fn default() -> Self {
        Self::new()
    }
}

/// Serialize only the dense string vector; the probe index is derived
/// state and is rebuilt on deserialization.
impl Serialize for SymbolTable {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.strings.serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for SymbolTable {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let strings = Vec::<String>::deserialize(deserializer)?;
        let mut t = SymbolTable::new();
        for (id, s) in strings.iter().enumerate() {
            let sym = t.intern(s);
            if sym.0 as usize != id {
                return Err(serde::de::Error::custom(format!(
                    "symbol table has duplicate or misplaced string {s:?} at index {id}"
                )));
            }
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_is_symbol_zero() {
        let t = SymbolTable::new();
        assert_eq!(t.get("UNKNOWN"), Some(SymbolTable::UNKNOWN));
        assert_eq!(t.resolve(SymbolTable::UNKNOWN), "UNKNOWN");
    }

    #[test]
    fn interning_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("CERN-PROD");
        let b = t.intern("CERN-PROD");
        assert_eq!(a, b);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let mut t = SymbolTable::new();
        let a = t.intern("A");
        let b = t.intern("B");
        assert_ne!(a, b);
        assert_eq!(t.resolve(a), "A");
        assert_eq!(t.resolve(b), "B");
    }

    #[test]
    fn get_does_not_intern() {
        let t = SymbolTable::new();
        assert!(t.get("missing").is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn survives_growth_and_keeps_dense_ids() {
        let mut t = SymbolTable::new();
        let syms: Vec<Sym> = (0..10_000).map(|i| t.intern(&format!("s{i}"))).collect();
        assert_eq!(t.len(), 10_001);
        for (i, &sym) in syms.iter().enumerate() {
            assert_eq!(sym, Sym(i as u32 + 1));
            assert_eq!(t.resolve(sym), format!("s{i}"));
            assert_eq!(t.get(&format!("s{i}")), Some(sym));
        }
        // Re-interning after growth still finds the original ids.
        assert_eq!(t.intern("s42"), syms[42]);
    }

    #[test]
    fn serde_round_trips_dense_order() {
        let mut t = SymbolTable::new();
        for s in ["CERN-PROD", "BNL-OSG2", "MWT2"] {
            t.intern(s);
        }
        let json = serde_json::to_string(&t).unwrap();
        assert_eq!(json, r#"["UNKNOWN","CERN-PROD","BNL-OSG2","MWT2"]"#);
        let back: SymbolTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), t.len());
        for s in ["UNKNOWN", "CERN-PROD", "BNL-OSG2", "MWT2"] {
            assert_eq!(back.get(s), t.get(s));
        }
    }
}
