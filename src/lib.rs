//! # dmsa — Data Management System Analysis
//!
//! Umbrella crate for the DMSA workspace: a full-system reproduction of
//! *"Data Management System Analysis for Distributed Computing Workloads"*
//! (SC Workshops '25). It re-exports every sub-crate and provides a
//! [`prelude`] for examples and downstream users.
//!
//! ## The pieces
//!
//! | crate | role |
//! |---|---|
//! | [`dmsa_simcore`] | discrete-event engine, time, RNG streams, intervals, stats |
//! | [`dmsa_gridnet`] | WLCG-like topology and time-varying bandwidth |
//! | [`dmsa_rucio_sim`] | DIDs, replicas, rules, FTS-like transfer engine |
//! | [`dmsa_panda_sim`] | tasks, jobs, data-locality brokerage, failure model |
//! | [`dmsa_metastore`] | metadata records, queries, corruption model |
//! | [`dmsa_core`] | the paper's matching framework (Exact / RM1 / RM2) |
//! | [`dmsa_analysis`] | matrices, breakdowns, bandwidth series, case studies |
//! | [`dmsa_scenario`] | end-to-end campaign driver and presets |
//!
//! ## Quick start
//!
//! ```
//! use dmsa::prelude::*;
//!
//! // A tiny campaign (seconds to run) ...
//! let mut config = ScenarioConfig::small();
//! config.seed = 7;
//! let campaign = dmsa_scenario::run(&config);
//!
//! // ... matched with Algorithm 1:
//! let set = IndexedMatcher.match_jobs(&campaign.store, campaign.window, MatchMethod::Exact);
//! let eval = evaluate(&campaign.store, &set, campaign.window);
//! assert!(eval.transfer_precision() > 0.9);
//! ```

pub use dmsa_analysis as analysis;
pub use dmsa_core as core;
pub use dmsa_gridnet as gridnet;
pub use dmsa_metastore as metastore;
pub use dmsa_panda_sim as panda;
pub use dmsa_rucio_sim as rucio;
pub use dmsa_scenario as scenario;
pub use dmsa_simcore as simcore;

/// Everything a typical user needs in scope.
pub mod prelude {
    pub use dmsa_core::matcher::Matcher;
    pub use dmsa_core::{
        evaluate, IndexedMatcher, MatchMethod, MatchSet, NaiveMatcher, ParallelMatcher,
    };
    pub use dmsa_gridnet::{BandwidthModel, GridTopology, SiteId, Tier, TopologyConfig};
    pub use dmsa_metastore::{CorruptionModel, MetaStore};
    pub use dmsa_scenario::{Campaign, ScenarioConfig};
    pub use dmsa_simcore::{RngFactory, SimDuration, SimTime};
}
