//! Time-varying effective bandwidth between sites.
//!
//! The paper's Fig 7/8 show that effective throughput on both remote links
//! and local storage frontends fluctuates by an order of magnitude within
//! hours, is asymmetric between the two directions of a site pair, and
//! occasionally collapses (deep congestion drops). This module models the
//! *effective per-stream rate* as a deterministic pure function of
//! `(seed, directed link, time bucket)`:
//!
//! ```text
//! rate(src→dst, t) = base(tier_src, tier_dst)
//!                  × site_factor(src) × site_factor(dst)
//!                  × diurnal(t, phase(link))
//!                  × lognormal_noise(link, bucket(t))
//!                  × congestion_drop(link, bucket(t))
//! ```
//!
//! Purity (no mutable state) means any number of components can query rates
//! concurrently and the campaign stays reproducible regardless of call
//! order — the property the whole repro rests on.

use crate::site::{SiteId, Tier};
use crate::topology::GridTopology;
use dmsa_simcore::{RngFactory, SimDuration, SimTime};
use rand::RngExt;

/// Width of the piecewise-constant bandwidth buckets.
pub const BUCKET: SimDuration = SimDuration::from_secs(300);

/// Fraction of buckets that suffer a congestion drop.
const DROP_PROB: f64 = 0.05;
/// Rate multiplier during a congestion drop.
const DROP_FACTOR: f64 = 0.08;
/// Fraction of buckets in *deep* collapse (storage frontend overload,
/// retry storms). These produce the paper's pathological transfers: GBs
/// crawling for hours (Fig 10's 17.7x spread, Fig 11's 30-minute 20 GB
/// transfer, Fig 5's 10,000 s staging).
const DEEP_DROP_PROB: f64 = 0.012;
/// Rate multiplier during a deep collapse.
const DEEP_DROP_FACTOR: f64 = 0.012;
/// Log-normal sigma of the per-bucket noise.
const NOISE_SIGMA: f64 = 0.55;
/// Diurnal modulation amplitude.
const DIURNAL_AMP: f64 = 0.35;

/// Deterministic effective-bandwidth oracle for a fixed topology.
#[derive(Clone, Debug)]
pub struct BandwidthModel {
    seed: u64,
    tiers: Vec<Tier>,
    site_factor: Vec<f64>,
}

impl BandwidthModel {
    /// Build the model for `topology`, deriving per-site heterogeneity from
    /// the `"gridnet/bandwidth"` RNG stream.
    pub fn new(rngs: &RngFactory, topology: &GridTopology) -> Self {
        let mut rng = rngs.stream("gridnet/bandwidth");
        let site_factor = topology
            .sites()
            .iter()
            .map(|_| 0.6 + 0.9 * rng.random::<f64>())
            .collect();
        BandwidthModel {
            seed: rngs.master_seed(),
            tiers: topology.sites().iter().map(|s| s.tier).collect(),
            site_factor,
        }
    }

    /// Baseline per-stream rate (MB/s) for a tier pair, before modulation.
    fn base_mbps(&self, src: SiteId, dst: SiteId) -> f64 {
        let ts = self.tiers[src.index()];
        let td = self.tiers[dst.index()];
        if src == dst {
            // Local transfers: storage frontend to worker scratch.
            match ts {
                Tier::T0 => 320.0,
                Tier::T1 => 260.0,
                Tier::T2 => 160.0,
                Tier::T3 => 80.0,
            }
        } else {
            use Tier::*;
            match (ts.min(td), ts.max(td)) {
                (T0, T0) => 200.0, // unreachable in practice: single T0
                (T0, T1) | (T1, T1) => 110.0,
                (T0, T2) | (T1, T2) => 55.0,
                (T2, T2) => 28.0,
                (_, T3) => 12.0,
                _ => 28.0,
            }
        }
    }

    /// Effective per-stream rate in MB/s on the **directed** link
    /// `src → dst` at instant `t`. Always strictly positive.
    pub fn effective_mbps(&self, src: SiteId, dst: SiteId, t: SimTime) -> f64 {
        let base = self.base_mbps(src, dst)
            * self.site_factor[src.index()]
            * self.site_factor[dst.index()];
        let bucket = t.as_millis().div_euclid(BUCKET.as_millis());

        // Directed-link identity: direction matters (Fig 7a vs 7b asymmetry).
        let link = ((src.0 as u64) << 32) | dst.0 as u64;

        // Diurnal load curve with a per-link phase offset.
        let phase = uniform(mix(self.seed, link, 0x00D1)) * std::f64::consts::TAU;
        let day_frac = (t.as_millis().rem_euclid(86_400_000)) as f64 / 86_400_000.0;
        let diurnal = 1.0 - DIURNAL_AMP * (std::f64::consts::TAU * day_frac + phase).sin();

        // Per-bucket log-normal noise.
        let u1 = uniform(mix(self.seed, link, bucket as u64 ^ 0xA5A5));
        let u2 = uniform(mix(self.seed, link, bucket as u64 ^ 0x5A5A));
        let z = box_muller(u1, u2);
        let noise = (NOISE_SIGMA * z).exp();

        // Rare congestion drops, two tiers deep.
        let u_drop = uniform(mix(self.seed, link, bucket as u64 ^ 0xD20B));
        let drop = if u_drop < DEEP_DROP_PROB {
            DEEP_DROP_FACTOR
        } else if u_drop < DROP_PROB {
            DROP_FACTOR
        } else {
            1.0
        };

        (base * diurnal * noise * drop).max(0.05)
    }

    /// Completion time of a single-stream transfer of `bytes` starting at
    /// `start` on `src → dst`, integrating the piecewise-constant rate.
    pub fn transfer_end(&self, src: SiteId, dst: SiteId, start: SimTime, bytes: u64) -> SimTime {
        let mut remaining = bytes as f64;
        let mut t = start;
        // Bound the loop: even at the floor rate a transfer finishes.
        for _ in 0..4_000_000 {
            if remaining <= 0.0 {
                break;
            }
            let rate_bytes_per_ms = self.effective_mbps(src, dst, t) * 1_000.0; // MB/s → bytes/ms
            let bucket_end = SimTime::from_millis(
                (t.as_millis().div_euclid(BUCKET.as_millis()) + 1) * BUCKET.as_millis(),
            );
            let span_ms = (bucket_end - t).as_millis() as f64;
            let capacity = rate_bytes_per_ms * span_ms;
            if capacity >= remaining {
                let need_ms = (remaining / rate_bytes_per_ms).ceil().max(1.0) as i64;
                return t + SimDuration::from_millis(need_ms);
            }
            remaining -= capacity;
            t = bucket_end;
        }
        t
    }

    /// Mean throughput (bytes/s) achieved by a transfer occupying
    /// `[start, end)`.
    pub fn mean_throughput_bytes_per_sec(bytes: u64, start: SimTime, end: SimTime) -> f64 {
        let secs = (end - start).as_secs_f64().max(1e-3);
        bytes as f64 / secs
    }
}

/// SplitMix64-style integer mixing of three words.
fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut x = seed ^ a.rotate_left(17) ^ b.wrapping_mul(0x9E3779B97F4A7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58476D1CE4E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Map a hash to a uniform in `(0, 1)` (never exactly 0 or 1).
fn uniform(h: u64) -> f64 {
    (((h >> 11) as f64) + 0.5) / (1u64 << 53) as f64
}

/// One standard normal deviate from two uniforms.
fn box_muller(u1: f64, u2: f64) -> f64 {
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TopologyConfig;

    fn model() -> (GridTopology, BandwidthModel) {
        let rngs = RngFactory::new(42);
        let topo = GridTopology::generate(&rngs, &TopologyConfig::default());
        let bw = BandwidthModel::new(&rngs, &topo);
        (topo, bw)
    }

    #[test]
    fn rates_are_positive_and_deterministic() {
        let (_, bw) = model();
        let (a, b) = (SiteId(0), SiteId(5));
        for h in 0..48 {
            let t = SimTime::from_hours(h);
            let r1 = bw.effective_mbps(a, b, t);
            let r2 = bw.effective_mbps(a, b, t);
            assert!(r1 > 0.0);
            assert_eq!(r1, r2);
        }
    }

    #[test]
    fn local_rates_exceed_remote_rates_on_average() {
        let (_, bw) = model();
        let local: f64 = (0..200)
            .map(|i| bw.effective_mbps(SiteId(1), SiteId(1), SimTime::from_secs(i * 600)))
            .sum::<f64>()
            / 200.0;
        let remote: f64 = (0..200)
            .map(|i| bw.effective_mbps(SiteId(1), SiteId(30), SimTime::from_secs(i * 600)))
            .sum::<f64>()
            / 200.0;
        assert!(
            local > remote * 1.5,
            "local {local:.1} MBps vs remote {remote:.1} MBps"
        );
    }

    #[test]
    fn direction_is_asymmetric() {
        let (_, bw) = model();
        let t = SimTime::from_hours(10);
        let fwd = bw.effective_mbps(SiteId(2), SiteId(40), t);
        let rev = bw.effective_mbps(SiteId(40), SiteId(2), t);
        assert_ne!(fwd, rev);
    }

    #[test]
    fn rates_fluctuate_substantially_over_time() {
        let (_, bw) = model();
        let rates: Vec<f64> = (0..288) // one day of 5-min buckets
            .map(|i| bw.effective_mbps(SiteId(3), SiteId(3), SimTime::from_secs(i * 300)))
            .collect();
        let max = rates.iter().cloned().fold(f64::MIN, f64::max);
        let min = rates.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max / min > 4.0,
            "expected order-of-magnitude swings, got {min:.1}..{max:.1}"
        );
    }

    #[test]
    fn congestion_drops_occur_at_expected_rate() {
        let (_, bw) = model();
        // Count buckets whose rate is far below the running median.
        let rates: Vec<f64> = (0..2000)
            .map(|i| bw.effective_mbps(SiteId(4), SiteId(7), SimTime::from_secs(i * 300)))
            .collect();
        let mut sorted = rates.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        let drops = rates.iter().filter(|&&r| r < median * 0.2).count();
        let frac = drops as f64 / rates.len() as f64;
        assert!(
            (0.01..0.15).contains(&frac),
            "drop fraction {frac} outside plausible band"
        );
    }

    #[test]
    fn transfer_end_is_after_start_and_monotone_in_size() {
        let (_, bw) = model();
        let start = SimTime::from_hours(5);
        let small = bw.transfer_end(SiteId(0), SiteId(0), start, 100_000_000);
        let big = bw.transfer_end(SiteId(0), SiteId(0), start, 10_000_000_000);
        assert!(small > start);
        assert!(big > small);
    }

    #[test]
    fn transfer_duration_roughly_matches_rate() {
        let (_, bw) = model();
        let start = SimTime::from_hours(3);
        let bytes: u64 = 2_000_000_000; // 2 GB
        let end = bw.transfer_end(SiteId(0), SiteId(0), start, bytes);
        let secs = (end - start).as_secs_f64();
        // Local T0 rate is a few hundred MB/s; 2 GB should take seconds to
        // a few minutes, never hours.
        assert!(secs > 0.5 && secs < 3_600.0, "2GB local took {secs}s");
    }

    #[test]
    fn transfer_spanning_congestion_takes_longer() {
        let (_, bw) = model();
        // Find a bucket with a deep drop relative to its neighbour, then
        // check a transfer started inside it finishes later than one started
        // in the faster bucket.
        let (src, dst) = (SiteId(9), SiteId(9));
        let mut slow_start = None;
        for i in 0..5000 {
            let t = SimTime::from_secs(i * 300);
            let r = bw.effective_mbps(src, dst, t);
            let r_next = bw.effective_mbps(src, dst, t + SimDuration::from_secs(300));
            if r < r_next * 0.15 {
                slow_start = Some(t);
                break;
            }
        }
        let t0 = slow_start.expect("no congestion drop found in 5000 buckets");
        let bytes = 5_000_000_000;
        let d_slow = (bw.transfer_end(src, dst, t0, bytes) - t0).as_secs_f64();
        let t1 = t0 + SimDuration::from_secs(300);
        let d_fast = (bw.transfer_end(src, dst, t1, bytes) - t1).as_secs_f64();
        assert!(
            d_slow > d_fast,
            "transfer in congested bucket ({d_slow}s) not slower than after ({d_fast}s)"
        );
    }

    #[test]
    fn mean_throughput_helper() {
        let th = BandwidthModel::mean_throughput_bytes_per_sec(
            1_000_000,
            SimTime::from_secs(0),
            SimTime::from_secs(10),
        );
        assert!((th - 100_000.0).abs() < 1e-6);
    }
}
