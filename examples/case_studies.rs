//! Render the paper's three case-study timelines (Figs 10–12) as ASCII.
//!
//! ```text
//! cargo run --release --example case_studies [scale]
//! ```

use dmsa::prelude::*;
use dmsa_analysis::cases::{
    find_redundant_unknown_case, find_sequential_staging_case, find_spanning_failure_case,
    JobTimeline,
};
use dmsa_core::matcher::Matcher;

const WIDTH: usize = 72;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("scale must be a float"))
        .unwrap_or(0.03);

    println!("simulating 8-day campaign at scale {scale} ...");
    let campaign = dmsa_scenario::run(&ScenarioConfig::paper_8day(scale));
    let store = &campaign.store;
    let exact = ParallelMatcher.match_jobs(store, campaign.window, MatchMethod::Exact);
    let rm2 = ParallelMatcher.match_jobs(store, campaign.window, MatchMethod::Rm2);

    println!("\n=== Case 1 (paper Fig 10): sequential staging, bandwidth under-utilization ===");
    match find_sequential_staging_case(store, &exact) {
        Some(tl) => render(&tl),
        None => println!("  (no specimen at this scale/seed — try a larger scale)"),
    }

    println!("\n=== Case 2 (paper Fig 11): failed job, transfer spanning queue and wall ===");
    match find_spanning_failure_case(store, &exact) {
        Some(tl) => {
            render(&tl);
            if let Some(code) = tl.error_code {
                println!(
                    "  error {code}: \"{}\"",
                    dmsa::panda::types::error_codes::message(code)
                );
            }
        }
        None => println!("  (no specimen at this scale/seed — try a larger scale)"),
    }

    println!(
        "\n=== Case 3 (paper Fig 12 / Table 3): redundant transfers + UNKNOWN site inference ==="
    );
    match find_redundant_unknown_case(store, &rm2, SimDuration::from_days(2)) {
        Some((tl, witnesses)) => {
            render(&tl);
            println!("  byte-identical witnesses with valid metadata:");
            for &w in &witnesses {
                let t = &store.transfers[w as usize];
                println!(
                    "    {:>10}  {} -> {}   at {:?}",
                    fmt_bytes(t.file_size),
                    store.name(t.source_site),
                    store.name(t.destination_site),
                    t.starttime
                );
            }
            println!(
                "  => recorded destination 'UNKNOWN' is inferable as {} (the matched job's site)",
                tl.computing_site
            );
        }
        None => println!("  (no specimen at this scale/seed — try a larger scale)"),
    }
}

/// Draw a proportional timeline: queue phase, wall phase, transfer bars.
fn render(tl: &JobTimeline) {
    let t0 = tl.creation;
    let t1 = tl
        .transfers
        .iter()
        .map(|t| t.end)
        .fold(tl.end, |a, b| a.max(b));
    let span = (t1 - t0).as_secs_f64().max(1.0);
    let pos = |t: dmsa_simcore::SimTime| -> usize {
        (((t - t0).as_secs_f64() / span) * (WIDTH - 1) as f64).round() as usize
    };

    println!(
        "  job {} [{}] at {} | queue {:.0}s wall {:.0}s | transfer {:.1}% of queue",
        tl.pandaid,
        tl.job_status,
        tl.computing_site,
        (tl.start - tl.creation).as_secs_f64(),
        (tl.end - tl.start).as_secs_f64(),
        tl.transfer_percent
    );

    // Phase ruler: '.' queue, '=' wall.
    let mut ruler = vec![' '; WIDTH];
    for (i, cell) in ruler.iter_mut().enumerate() {
        if i <= pos(tl.start) {
            *cell = '.';
        } else if i <= pos(tl.end) {
            *cell = '=';
        }
    }
    println!("  job   |{}|", ruler.iter().collect::<String>());

    for (k, t) in tl.transfers.iter().enumerate() {
        let mut bar = vec![' '; WIDTH];
        let (a, b) = (pos(t.start), pos(t.end).max(pos(t.start)));
        for cell in bar.iter_mut().take(b + 1).skip(a) {
            *cell = '#';
        }
        println!(
            "  tx{k:<2}  |{}| {:>10} @ {:>7.1} MBps",
            bar.iter().collect::<String>(),
            fmt_bytes(t.bytes),
            t.throughput / 1e6
        );
    }
}

fn fmt_bytes(b: u64) -> String {
    let b = b as f64;
    for (name, scale) in [("GB", 1e9), ("MB", 1e6), ("KB", 1e3)] {
        if b >= scale {
            return format!("{:.2} {name}", b / scale);
        }
    }
    format!("{b:.0} B")
}
