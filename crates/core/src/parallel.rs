//! Data-parallel matching with rayon.
//!
//! §5.5 of the paper singles out parallel, scalable analysis as the
//! valuable next step once metadata quality improves. The matching problem
//! is embarrassingly parallel across jobs: the index is built once
//! (read-only) and jobs are matched independently. Results are collected
//! per rayon's indexed parallel iterator, so output order — and therefore
//! the whole `MatchSet` — is identical to the sequential engines'.

use crate::matcher::Matcher;
use crate::matchset::MatchSet;
use crate::method::MatchMethod;
use crate::prepared::PreparedStore;
use dmsa_metastore::MetaStore;
use dmsa_simcore::interval::Interval;

/// Rayon-parallel prepared-index matcher (builds the index per call; the
/// per-job matching loop runs on all cores with thread-local scratch).
#[derive(Clone, Copy, Debug, Default)]
pub struct ParallelMatcher;

impl Matcher for ParallelMatcher {
    fn match_jobs(&self, store: &MetaStore, window: Interval, method: MatchMethod) -> MatchSet {
        PreparedStore::build(store).par_match_window(window, method)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexedMatcher;
    use crate::matcher::testutil::StoreBuilder;

    /// A few hundred jobs with a mix of clean, size-broken, unknown-site,
    /// and late transfers.
    fn bulk_store() -> (dmsa_metastore::MetaStore, Interval) {
        let mut b = StoreBuilder::new();
        let sites: Vec<_> = (0..8).map(|i| b.site(&format!("SITE-{i}"))).collect();
        let unknown = dmsa_metastore::SymbolTable::UNKNOWN;
        for i in 0..400u64 {
            let site = sites[(i % 8) as usize];
            let size = 1_000 + i;
            b.job_with_file(i, 1000 + i, site, size, 0, 100 + i as i64, 500 + i as i64);
            match i % 4 {
                0 => {
                    b.download(i, 1000 + i, site, site, size, 10, 60);
                }
                1 => {
                    b.download(i, 1000 + i, site, site, size, 10, 60);
                    b.store.jobs.last_mut().unwrap().ninputfilebytes += 7;
                }
                2 => {
                    b.download(i, 1000 + i, site, unknown, size, 10, 60);
                }
                _ => {
                    b.download(i, 1000 + i, site, site, size, 900, 950);
                }
            }
        }
        let w = b.window();
        (b.store, w)
    }

    #[test]
    fn parallel_equals_sequential_for_all_methods() {
        let (store, w) = bulk_store();
        for m in MatchMethod::ALL {
            let seq = IndexedMatcher.match_jobs(&store, w, m);
            let par = ParallelMatcher.match_jobs(&store, w, m);
            assert_eq!(seq, par, "parallel/sequential divergence under {m:?}");
        }
    }

    #[test]
    fn parallel_is_deterministic_across_runs() {
        let (store, w) = bulk_store();
        let a = ParallelMatcher.match_jobs(&store, w, MatchMethod::Rm2);
        let b = ParallelMatcher.match_jobs(&store, w, MatchMethod::Rm2);
        assert_eq!(a, b);
    }

    #[test]
    fn expected_population_shares_match() {
        let (store, w) = bulk_store();
        let e = ParallelMatcher.match_jobs(&store, w, MatchMethod::Exact);
        let r1 = ParallelMatcher.match_jobs(&store, w, MatchMethod::Rm1);
        let r2 = ParallelMatcher.match_jobs(&store, w, MatchMethod::Rm2);
        // 100 clean exact; +100 size-broken at RM1; +100 unknown at RM2;
        // 100 late never match.
        assert_eq!(e.n_matched_jobs(), 100);
        assert_eq!(r1.n_matched_jobs(), 200);
        assert_eq!(r2.n_matched_jobs(), 300);
    }
}
