//! Offline stub for `serde_derive`: emits inert trait impls.
//!
//! Parses only far enough to find the type name (derived types in dmsa
//! are all non-generic); `#[serde(...)]` helper attributes are accepted
//! and ignored.

use proc_macro::{TokenStream, TokenTree};

/// Name of the struct/enum a derive input defines.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(t) = tokens.next() {
        if let TokenTree::Ident(id) = &t {
            let s = id.to_string();
            if s == "struct" || s == "enum" || s == "union" {
                for t2 in tokens.by_ref() {
                    if let TokenTree::Ident(name) = t2 {
                        return name.to_string();
                    }
                }
            }
        }
    }
    panic!("serde_derive stub: no struct/enum name found");
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn serialize<S: serde::Serializer>(&self, _s: S) -> Result<S::Ok, S::Error> {{\n\
                 Err(<S::Error as serde::ser::Error>::custom(\"offline serde stub\"))\n\
             }}\n\
         }}"
    )
    .parse()
    .unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!(
        "impl<'de> serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: serde::Deserializer<'de>>(_d: D) -> Result<Self, D::Error> {{\n\
                 Err(<D::Error as serde::de::Error>::custom(\"offline serde stub\"))\n\
             }}\n\
         }}"
    )
    .parse()
    .unwrap()
}
