//! The replica catalog: files, datasets, containers, and replicas.
//!
//! This is the bookkeeping heart of the Rucio substrate. It tracks, for
//! every file: its LFN, size, owning dataset, production block, scope, and
//! the set of RSEs currently holding a physical replica. Datasets aggregate
//! files for bulk operations; containers aggregate datasets (paper §2.2).
//!
//! Invariants maintained (and property-tested):
//! * a file always belongs to exactly one dataset;
//! * replica sets never contain duplicates;
//! * dataset byte totals equal the sum of member file sizes;
//! * registered volume is monotone in time (deletion removes *replicas*,
//!   never catalog entries — mirroring Rucio, where DIDs are immutable).

use crate::did::{self, DidName, Scope};
use dmsa_gridnet::RseId;
use dmsa_simcore::{SimTime, Sym, SymbolTable};
use serde::{Deserialize, Serialize};

/// Dense file identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct FileId(pub u64);

/// Dense dataset identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct DatasetId(pub u64);

/// Dense container identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct ContainerId(pub u64);

/// Catalog entry for one file.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FileEntry {
    /// Identifier.
    pub id: FileId,
    /// Logical file name, interned in the catalog's
    /// [symbol table](ReplicaCatalog::names).
    pub lfn: Sym,
    /// Scope of the DID.
    pub scope: Scope,
    /// Exact size in bytes.
    pub size: u64,
    /// Owning dataset.
    pub dataset: DatasetId,
    /// Registration instant (drives the growth series).
    pub registered: SimTime,
}

/// Catalog entry for one dataset.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DatasetEntry {
    /// Identifier.
    pub id: DatasetId,
    /// Dataset DID name, interned in the catalog's
    /// [symbol table](ReplicaCatalog::names).
    pub name: Sym,
    /// Scope.
    pub scope: Scope,
    /// Production block identifier recorded in PanDA file metadata
    /// (interned).
    pub prod_dblock: Sym,
    /// Member files, in registration order.
    pub files: Vec<FileId>,
    /// Sum of member file sizes.
    pub total_bytes: u64,
}

/// Catalog entry for one container (aggregates datasets).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ContainerEntry {
    /// Identifier.
    pub id: ContainerId,
    /// Container DID name.
    pub name: DidName,
    /// Member datasets.
    pub datasets: Vec<DatasetId>,
}

/// The global file/dataset/replica catalog.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ReplicaCatalog {
    files: Vec<FileEntry>,
    datasets: Vec<DatasetEntry>,
    containers: Vec<ContainerEntry>,
    /// `replicas[file.index()]` = RSEs currently holding the file, sorted.
    replicas: Vec<Vec<RseId>>,
    /// Single owner of every LFN / dataset / prod-dblock string. Entries
    /// and [`crate::TransferEvent`]s carry [`Sym`] handles into this
    /// table, so the hot transfer path never clones a name.
    names: SymbolTable,
}

impl ReplicaCatalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new dataset with `n_files` files of the given sizes.
    /// Returns the dataset id; file ids are contiguous and retrievable via
    /// [`ReplicaCatalog::dataset_files`].
    pub fn register_dataset(
        &mut self,
        scope: Scope,
        task_seq: u64,
        stream: &str,
        file_sizes: &[u64],
        registered: SimTime,
    ) -> DatasetId {
        let ds_id = DatasetId(self.datasets.len() as u64);
        let name_did = did::dataset_name(scope, task_seq, stream);
        let name = self.names.intern(&name_did.0);
        let prod_dblock = self
            .names
            .intern(&did::prod_dblock(&name_did, (task_seq % 7) as u32).0);
        let mut files = Vec::with_capacity(file_sizes.len());
        let mut total = 0u64;
        for (i, &size) in file_sizes.iter().enumerate() {
            let fid = FileId(self.files.len() as u64);
            let lfn = self
                .names
                .intern(&did::file_lfn(scope, task_seq, i as u32).0);
            self.files.push(FileEntry {
                id: fid,
                lfn,
                scope,
                size,
                dataset: ds_id,
                registered,
            });
            self.replicas.push(Vec::new());
            files.push(fid);
            total += size;
        }
        self.datasets.push(DatasetEntry {
            id: ds_id,
            name,
            scope,
            prod_dblock,
            files,
            total_bytes: total,
        });
        ds_id
    }

    /// Group existing datasets into a container.
    pub fn register_container(&mut self, name: DidName, datasets: Vec<DatasetId>) -> ContainerId {
        let id = ContainerId(self.containers.len() as u64);
        self.containers.push(ContainerEntry { id, name, datasets });
        id
    }

    /// Add a replica of `file` at `rse` (idempotent).
    pub fn add_replica(&mut self, file: FileId, rse: RseId) {
        let set = &mut self.replicas[file.0 as usize];
        if let Err(pos) = set.binary_search(&rse) {
            set.insert(pos, rse);
        }
    }

    /// Remove a replica (no-op if absent). Returns whether it was present.
    pub fn remove_replica(&mut self, file: FileId, rse: RseId) -> bool {
        let set = &mut self.replicas[file.0 as usize];
        match set.binary_search(&rse) {
            Ok(pos) => {
                set.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// RSEs currently holding `file`.
    pub fn replicas_of(&self, file: FileId) -> &[RseId] {
        &self.replicas[file.0 as usize]
    }

    /// Whether `file` has a replica at `rse`.
    pub fn has_replica(&self, file: FileId, rse: RseId) -> bool {
        self.replicas[file.0 as usize].binary_search(&rse).is_ok()
    }

    /// File entry by id.
    pub fn file(&self, id: FileId) -> &FileEntry {
        &self.files[id.0 as usize]
    }

    /// Dataset entry by id.
    pub fn dataset(&self, id: DatasetId) -> &DatasetEntry {
        &self.datasets[id.0 as usize]
    }

    /// Container entry by id.
    pub fn container(&self, id: ContainerId) -> &ContainerEntry {
        &self.containers[id.0 as usize]
    }

    /// Files of a dataset.
    pub fn dataset_files(&self, id: DatasetId) -> &[FileId] {
        &self.dataset(id).files
    }

    /// All files (registration order).
    pub fn files(&self) -> &[FileEntry] {
        &self.files
    }

    /// All datasets.
    pub fn datasets(&self) -> &[DatasetEntry] {
        &self.datasets
    }

    /// All containers.
    pub fn containers(&self) -> &[ContainerEntry] {
        &self.containers
    }

    /// The full replica table: `replicas()[file.index()]` is the sorted RSE
    /// set of that file. Exposed for checkpoint encoding.
    pub fn replicas(&self) -> &[Vec<RseId>] {
        &self.replicas
    }

    /// Rebuild a catalog from checkpointed parts. Validates the catalog
    /// invariants so a corrupted checkpoint is rejected here rather than
    /// surfacing as a panic mid-campaign.
    pub fn from_parts(
        names: SymbolTable,
        files: Vec<FileEntry>,
        datasets: Vec<DatasetEntry>,
        containers: Vec<ContainerEntry>,
        replicas: Vec<Vec<RseId>>,
    ) -> Result<Self, String> {
        let cat = ReplicaCatalog {
            files,
            datasets,
            containers,
            replicas,
            names,
        };
        cat.check_invariants()?;
        Ok(cat)
    }

    /// The interning table backing every name in the catalog.
    pub fn names(&self) -> &SymbolTable {
        &self.names
    }

    /// Resolve an interned name (LFN, dataset name, or prod-dblock).
    pub fn resolve(&self, sym: Sym) -> &str {
        self.names.resolve(sym)
    }

    /// Number of files registered.
    pub fn n_files(&self) -> usize {
        self.files.len()
    }

    /// Total registered bytes (catalog volume, replica-count agnostic).
    pub fn total_registered_bytes(&self) -> u64 {
        self.datasets.iter().map(|d| d.total_bytes).sum()
    }

    /// Total physical bytes = Σ size × replica-count.
    pub fn total_physical_bytes(&self) -> u64 {
        self.files
            .iter()
            .map(|f| f.size * self.replicas[f.id.0 as usize].len() as u64)
            .sum()
    }

    /// Sanity check of all catalog invariants; used by property tests and
    /// debug assertions in the scenario driver.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.replicas.len() != self.files.len() {
            return Err("replica table length mismatch".into());
        }
        for ds in &self.datasets {
            let sum: u64 = ds.files.iter().map(|&f| self.file(f).size).sum();
            if sum != ds.total_bytes {
                return Err(format!("dataset {:?} byte total drifted", ds.id));
            }
            for &f in &ds.files {
                if self.file(f).dataset != ds.id {
                    return Err(format!("file {f:?} back-pointer broken"));
                }
            }
        }
        for (i, set) in self.replicas.iter().enumerate() {
            if set.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("replica set of file {i} unsorted/duplicated"));
            }
        }
        let n_syms = self.names.len() as u32;
        for f in &self.files {
            if f.lfn.0 >= n_syms {
                return Err(format!("file {:?} lfn symbol out of range", f.id));
            }
        }
        for ds in &self.datasets {
            if ds.name.0 >= n_syms || ds.prod_dblock.0 >= n_syms {
                return Err(format!("dataset {:?} name symbol out of range", ds.id));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cat_with_dataset() -> (ReplicaCatalog, DatasetId) {
        let mut cat = ReplicaCatalog::new();
        let ds = cat.register_dataset(
            Scope::User(1),
            10,
            "higgs",
            &[100, 200, 300],
            SimTime::from_secs(0),
        );
        (cat, ds)
    }

    #[test]
    fn register_dataset_creates_files_and_totals() {
        let (cat, ds) = cat_with_dataset();
        assert_eq!(cat.n_files(), 3);
        assert_eq!(cat.dataset(ds).total_bytes, 600);
        assert_eq!(cat.dataset_files(ds).len(), 3);
        assert_eq!(cat.total_registered_bytes(), 600);
        cat.check_invariants().unwrap();
    }

    #[test]
    fn file_entries_link_back_to_dataset() {
        let (cat, ds) = cat_with_dataset();
        for &f in cat.dataset_files(ds) {
            assert_eq!(cat.file(f).dataset, ds);
        }
    }

    #[test]
    fn replicas_add_remove_idempotent() {
        let (mut cat, ds) = cat_with_dataset();
        let f = cat.dataset_files(ds)[0];
        let (r1, r2) = (RseId(4), RseId(2));
        cat.add_replica(f, r1);
        cat.add_replica(f, r2);
        cat.add_replica(f, r1); // duplicate ignored
        assert_eq!(cat.replicas_of(f), &[r2, r1]); // sorted
        assert!(cat.has_replica(f, r1));
        assert!(cat.remove_replica(f, r1));
        assert!(!cat.remove_replica(f, r1)); // already gone
        assert!(!cat.has_replica(f, r1));
        cat.check_invariants().unwrap();
    }

    #[test]
    fn physical_bytes_count_replicas() {
        let (mut cat, ds) = cat_with_dataset();
        let files = cat.dataset_files(ds).to_vec();
        for &f in &files {
            cat.add_replica(f, RseId(0));
            cat.add_replica(f, RseId(1));
        }
        assert_eq!(cat.total_physical_bytes(), 1200);
        assert_eq!(cat.total_registered_bytes(), 600);
    }

    #[test]
    fn containers_group_datasets() {
        let (mut cat, ds) = cat_with_dataset();
        let ds2 = cat.register_dataset(Scope::User(2), 11, "top", &[50], SimTime::from_secs(5));
        let c = cat.register_container(DidName("cont.1".into()), vec![ds, ds2]);
        assert_eq!(cat.container(c).datasets, vec![ds, ds2]);
    }

    #[test]
    fn distinct_datasets_have_distinct_blocks_and_names() {
        let mut cat = ReplicaCatalog::new();
        let a = cat.register_dataset(Scope::User(1), 1, "s", &[1], SimTime::EPOCH);
        let b = cat.register_dataset(Scope::User(1), 2, "s", &[1], SimTime::EPOCH);
        assert_ne!(cat.dataset(a).name, cat.dataset(b).name);
        assert_ne!(cat.dataset(a).prod_dblock, cat.dataset(b).prod_dblock);
    }
}
