//! Matching strategy selection.

use serde::{Deserialize, Serialize};

/// The three matching strategies of §4.2–4.3.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum MatchMethod {
    /// Algorithm 1 in full (time + byte-sum + site checks).
    Exact,
    /// Relaxed level 1: the byte-sum check is dropped.
    Rm1,
    /// Relaxed level 2: RM1, plus `UNKNOWN`/invalid endpoint names pass
    /// the site check.
    Rm2,
}

impl MatchMethod {
    /// All methods in increasing relaxation order.
    pub const ALL: [MatchMethod; 3] = [MatchMethod::Exact, MatchMethod::Rm1, MatchMethod::Rm2];

    /// Human-readable name matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            MatchMethod::Exact => "Exact",
            MatchMethod::Rm1 => "RM1",
            MatchMethod::Rm2 => "RM2",
        }
    }

    /// Whether the byte-sum check applies.
    pub fn checks_byte_sums(self) -> bool {
        matches!(self, MatchMethod::Exact)
    }

    /// Whether unknown/invalid endpoints pass the site check.
    pub fn relaxes_sites(self) -> bool {
        matches!(self, MatchMethod::Rm2)
    }

    /// `a.subsumes(b)` — every match found by `b` must also be found by
    /// `a` on the same store (the monotonicity the property tests assert).
    pub fn subsumes(self, other: MatchMethod) -> bool {
        use MatchMethod::*;
        matches!(
            (self, other),
            (Exact, Exact) | (Rm1, Exact) | (Rm1, Rm1) | (Rm2, _)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(MatchMethod::Exact.label(), "Exact");
        assert_eq!(MatchMethod::Rm1.label(), "RM1");
        assert_eq!(MatchMethod::Rm2.label(), "RM2");
    }

    #[test]
    fn relaxation_flags() {
        assert!(MatchMethod::Exact.checks_byte_sums());
        assert!(!MatchMethod::Rm1.checks_byte_sums());
        assert!(!MatchMethod::Rm2.checks_byte_sums());
        assert!(MatchMethod::Rm2.relaxes_sites());
        assert!(!MatchMethod::Rm1.relaxes_sites());
    }

    #[test]
    fn subsumption_is_a_chain() {
        use MatchMethod::*;
        assert!(Rm2.subsumes(Rm1) && Rm2.subsumes(Exact) && Rm1.subsumes(Exact));
        assert!(!Exact.subsumes(Rm1) && !Rm1.subsumes(Rm2));
        for m in MatchMethod::ALL {
            assert!(m.subsumes(m));
        }
    }
}
