//! The on-disk campaign format.
//!
//! A campaign export carries everything matching and analysis need — the
//! (corrupted) metadata store and the observation window — plus the
//! provenance needed to regenerate it bit-for-bit (the scenario config).
//! The simulator-side state (topology, catalog, bandwidth oracle) is *not*
//! exported: analyses must work from metadata alone, exactly like the
//! paper's.
//!
//! Serialization is hand-rolled over [`crate::json`] so it works in every
//! build environment and, more importantly, so loading can be **hardened**:
//! [`CampaignExport::from_json_lenient`] validates the export section by
//! section and record by record, *quarantining* malformed records instead
//! of failing the whole load. Each quarantined record is counted under an
//! error-taxonomy kind (bad UTF-8, out-of-range time, unknown site symbol,
//! version skew, malformed structure) and the first few are diagnosed with
//! their line/column, so a partially corrupted multi-gigabyte export is
//! still analyzable — and tells you exactly what was dropped.
//! [`CampaignExport::from_json`] is the strict variant: any quarantined
//! record is an error. A file written by a *newer* format version is always
//! rejected outright, with a found-vs-supported message.

use crate::json::{self, Json};
use dmsa_gridnet::{
    FaultConfig, HealthConfig, HealthCounters, HealthSubject, HealthSummary, OpenEpisode, SiteId,
    TopologyConfig,
};
use dmsa_metastore::{
    CorruptionModel, FileDirection, FileRecord, JobRecord, MetaStore, Sym, SymbolTable,
    TransferRecord,
};
use dmsa_panda_sim::{BrokerConfig, FailureModel, IoMode, JobStatus, TaskStatus, WorkloadParams};
use dmsa_rucio_sim::{Activity, RetryPolicy, TransferPathStats};
use dmsa_scenario::{Campaign, ScenarioConfig};
use dmsa_simcore::interval::Interval;
use dmsa_simcore::{SimDuration, SimTime};
use std::collections::HashSet;

/// Serializable campaign: metadata + window + provenance.
pub struct CampaignExport {
    /// Format version for forward compatibility.
    pub version: u32,
    /// The scenario that produced this campaign (reproducibility).
    pub config: ScenarioConfig,
    /// Observation window.
    pub window: Interval,
    /// The corrupted metadata store.
    pub store: MetaStore,
    /// Engine transfer-path counters (defaulted when reading pre-health
    /// exports, which keeps the format at version 1).
    pub path_stats: TransferPathStats,
    /// Breaker telemetry, present only when the campaign ran with the
    /// health loop armed.
    pub health: Option<HealthSummary>,
}

/// Current format version.
pub const FORMAT_VERSION: u32 = 1;

/// Why a record was quarantined instead of loaded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    /// A string field carries U+FFFD — the file's bytes were not valid
    /// UTF-8 and were decoded lossily.
    BadUtf8,
    /// A timestamp is negative or an interval ends before it starts.
    OutOfRangeTime,
    /// An interned-symbol reference points past the symbol table.
    UnknownSiteSym,
    /// An enum string or extra trailing fields this build does not know —
    /// most likely written by a newer tool.
    VersionSkew,
    /// Structurally broken: wrong JSON type, wrong arity, missing value.
    Malformed,
}

/// Per-kind counts of quarantined records, plus example diagnoses.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QuarantineReport {
    /// Records with lossily-decoded (invalid UTF-8) string fields.
    pub bad_utf8: u64,
    /// Records with negative times or end-before-start intervals.
    pub out_of_range_time: u64,
    /// Records referencing symbols past the symbol table.
    pub unknown_site_sym: u64,
    /// Records with unknown enum values or extra fields (newer writer).
    pub version_skew: u64,
    /// Records with broken structure (type/arity/missing value).
    pub malformed: u64,
    /// Up to eight example diagnoses with line/column positions.
    pub examples: Vec<String>,
}

impl QuarantineReport {
    fn note(&mut self, kind: Kind, example: String) {
        match kind {
            Kind::BadUtf8 => self.bad_utf8 += 1,
            Kind::OutOfRangeTime => self.out_of_range_time += 1,
            Kind::UnknownSiteSym => self.unknown_site_sym += 1,
            Kind::VersionSkew => self.version_skew += 1,
            Kind::Malformed => self.malformed += 1,
        }
        if self.examples.len() < 8 {
            self.examples.push(example);
        }
    }

    /// Total quarantined records.
    pub fn total(&self) -> u64 {
        self.bad_utf8
            + self.out_of_range_time
            + self.unknown_site_sym
            + self.version_skew
            + self.malformed
    }

    /// Nothing was quarantined?
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// One-line per-kind summary, e.g. `bad-utf8 1, malformed 2`.
    pub fn one_line(&self) -> String {
        format!(
            "bad-utf8 {}, out-of-range-time {}, unknown-site-sym {}, version-skew {}, malformed {}",
            self.bad_utf8,
            self.out_of_range_time,
            self.unknown_site_sym,
            self.version_skew,
            self.malformed
        )
    }

    /// The full multi-line report `dmsa analyze --quarantine-report` prints.
    pub fn render(&self) -> String {
        let mut out = format!("quarantined records: {}\n", self.total());
        out.push_str(&format!("  bad-utf8           {}\n", self.bad_utf8));
        out.push_str(&format!(
            "  out-of-range-time  {}\n",
            self.out_of_range_time
        ));
        out.push_str(&format!("  unknown-site-sym   {}\n", self.unknown_site_sym));
        out.push_str(&format!("  version-skew       {}\n", self.version_skew));
        out.push_str(&format!("  malformed          {}\n", self.malformed));
        for ex in &self.examples {
            out.push_str(&format!("  e.g. {ex}\n"));
        }
        out
    }
}

/// The result of a lenient load: what survived, and what did not.
pub struct LoadedExport {
    /// The export with quarantined records dropped.
    pub export: CampaignExport,
    /// What was dropped, and why.
    pub quarantine: QuarantineReport,
}

impl CampaignExport {
    /// Build an export from a completed campaign.
    pub fn from_campaign(campaign: &Campaign) -> Self {
        CampaignExport {
            version: FORMAT_VERSION,
            config: campaign.config.clone(),
            window: campaign.window,
            store: campaign.store.clone(),
            path_stats: campaign.path_stats,
            health: campaign.health.clone(),
        }
    }

    /// Serialize to JSON. Deterministic: the same export always produces
    /// the same bytes (the resume tests compare exports byte-for-byte).
    pub fn to_json(&self) -> String {
        let store = &self.store;
        let mut o = String::with_capacity(1 << 20);
        o.push_str("{\"version\":");
        o.push_str(&self.version.to_string());
        o.push_str(",\"config\":");
        write_config(&mut o, &self.config);
        o.push_str(",\"window\":[");
        o.push_str(&self.window.start.as_millis().to_string());
        o.push(',');
        o.push_str(&self.window.end.as_millis().to_string());
        o.push_str("],\"symbols\":[");
        for i in 0..store.symbols.len() as u32 {
            if i > 0 {
                o.push(',');
            }
            json::push_str_lit(&mut o, store.symbols.resolve(Sym(i)));
        }
        o.push_str("],\"valid_sites\":[");
        let mut sites: Vec<u32> = store.valid_sites.iter().map(|s| s.0).collect();
        sites.sort_unstable();
        for (i, s) in sites.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str(&s.to_string());
        }
        o.push_str("],\"jobs\":[");
        for (i, j) in store.jobs.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            write_job(&mut o, j);
        }
        o.push_str("],\"files\":[");
        for (i, f) in store.files.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            write_file(&mut o, f);
        }
        o.push_str("],\"transfers\":[");
        for (i, t) in store.transfers.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            write_transfer(&mut o, t);
        }
        o.push_str("],\"path_stats\":[");
        let p = &self.path_stats;
        for (i, v) in [
            p.requests,
            p.delivered,
            p.delivered_after_retry,
            p.failed_attempts,
            p.exhausted,
            p.no_replica,
        ]
        .iter()
        .enumerate()
        {
            if i > 0 {
                o.push(',');
            }
            o.push_str(&v.to_string());
        }
        o.push_str("],\"health\":");
        match &self.health {
            None => o.push_str("null"),
            Some(h) => write_health(&mut o, h),
        }
        o.push('}');
        o
    }

    /// Deserialize from JSON, **strictly**: any quarantined record fails
    /// the load with a per-kind breakdown. Version skew at the top level
    /// and structural damage to required sections are errors in both modes.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let loaded = Self::from_json_lenient(json)?;
        if !loaded.quarantine.is_empty() {
            return Err(format!(
                "campaign export contains {} quarantined record(s): {}; \
                 load leniently with `dmsa analyze --quarantine-report`",
                loaded.quarantine.total(),
                loaded.quarantine.one_line()
            ));
        }
        Ok(loaded.export)
    }

    /// Deserialize from JSON, **leniently**: the export is validated
    /// section by section and malformed records are quarantined (counted
    /// by error kind, dropped from the store) rather than failing the
    /// load. Only damage that makes the export meaningless is fatal: an
    /// unparseable document, a missing/broken required section, or a
    /// format version newer than this build supports.
    pub fn from_json_lenient(src: &str) -> Result<LoadedExport, String> {
        let root = json::parse(src).map_err(|e| format!("campaign parse error {e}"))?;
        if root.get("version").is_none() && !matches!(root.value, json::Value::Obj(_)) {
            return Err(format!(
                "campaign export must be a JSON object, {}",
                root.at()
            ));
        }
        let vj = root
            .get("version")
            .ok_or_else(|| format!("campaign export has no \"version\" field ({})", root.at()))?;
        let version = vj
            .as_u64()
            .ok_or_else(|| format!("\"version\" is not an integer {}", vj.at()))?;
        if version > FORMAT_VERSION as u64 || version == 0 {
            return Err(format!(
                "unsupported campaign format version {version} {}: found {version}, \
                 this build supports {FORMAT_VERSION}",
                vj.at()
            ));
        }

        let config = parse_config(section(&root, "config")?)?;

        let wj = section(&root, "window")?;
        let window = match wj.as_arr() {
            Some([s, e]) => match (s.as_i64(), e.as_i64()) {
                (Some(s), Some(e)) if s >= 0 && e >= s => Interval {
                    start: SimTime::from_millis(s),
                    end: SimTime::from_millis(e),
                },
                _ => return Err(format!("\"window\" times out of range {}", wj.at())),
            },
            _ => return Err(format!("\"window\" must be [start_ms,end_ms] {}", wj.at())),
        };

        let mut q = QuarantineReport::default();

        // Symbol table: rebuilt by interning in file order so every Sym id
        // in the records resolves to the same string it was written under.
        let sj = section(&root, "symbols")?;
        let sym_arr = sj
            .as_arr()
            .ok_or_else(|| format!("\"symbols\" must be an array {}", sj.at()))?;
        let mut symbols = SymbolTable::new();
        for (i, el) in sym_arr.iter().enumerate() {
            let s = el
                .as_str()
                .ok_or_else(|| format!("symbol {i} is not a string {}", el.at()))?;
            if i == 0 {
                if s != "UNKNOWN" {
                    return Err(format!(
                        "symbol 0 must be the UNKNOWN sentinel, found {s:?} {}",
                        el.at()
                    ));
                }
                continue; // already interned by SymbolTable::new()
            }
            let sym = symbols.intern(s);
            if sym.0 as usize != i {
                return Err(format!("duplicate symbol {s:?} {}", el.at()));
            }
        }
        let n_syms = symbols.len() as u32;

        let mut valid_sites: HashSet<Sym> = HashSet::new();
        let vj = section(&root, "valid_sites")?;
        let site_arr = vj
            .as_arr()
            .ok_or_else(|| format!("\"valid_sites\" must be an array {}", vj.at()))?;
        for (i, el) in site_arr.iter().enumerate() {
            match el.as_u64() {
                Some(s) if s < n_syms as u64 => {
                    valid_sites.insert(Sym(s as u32));
                }
                Some(s) => q.note(
                    Kind::UnknownSiteSym,
                    format!(
                        "valid_sites[{i}] {}: symbol {s} past table of {n_syms}",
                        el.at()
                    ),
                ),
                None => q.note(
                    Kind::Malformed,
                    format!("valid_sites[{i}] {}: not a symbol id", el.at()),
                ),
            }
        }

        let jobs = load_section(&root, "jobs", &mut q, |el| parse_job(el, n_syms))?;
        let files = load_section(&root, "files", &mut q, |el| parse_file(el, n_syms))?;
        let transfers = load_section(&root, "transfers", &mut q, |el| parse_transfer(el, n_syms))?;

        let path_stats = match root.get("path_stats") {
            None => TransferPathStats::default(),
            Some(pj) => {
                let arr = pj
                    .as_arr()
                    .ok_or_else(|| format!("\"path_stats\" must be an array {}", pj.at()))?;
                let vals: Option<Vec<u64>> = arr.iter().map(|e| e.as_u64()).collect();
                match vals.as_deref() {
                    Some([a, b, c, d, e, f]) => TransferPathStats {
                        requests: *a,
                        delivered: *b,
                        delivered_after_retry: *c,
                        failed_attempts: *d,
                        exhausted: *e,
                        no_replica: *f,
                    },
                    _ => return Err(format!("\"path_stats\" must be six counters {}", pj.at())),
                }
            }
        };

        let health = match root.get("health") {
            None => None,
            Some(h) if h.is_null() => None,
            Some(h) => Some(parse_health(h, &mut q)?),
        };

        Ok(LoadedExport {
            export: CampaignExport {
                version: version as u32,
                config,
                window,
                store: MetaStore {
                    symbols,
                    jobs,
                    files,
                    transfers,
                    valid_sites,
                },
                path_stats,
                health,
            },
            quarantine: q,
        })
    }
}

fn section<'a>(root: &'a Json, key: &str) -> Result<&'a Json, String> {
    root.get(key)
        .ok_or_else(|| format!("campaign export has no {key:?} section ({})", root.at()))
}

/// Stream one record section through `parse`, quarantining failures.
fn load_section<T>(
    root: &Json,
    key: &str,
    q: &mut QuarantineReport,
    parse: impl Fn(&Json) -> Result<T, (Kind, String)>,
) -> Result<Vec<T>, String> {
    let sj = section(root, key)?;
    let arr = sj
        .as_arr()
        .ok_or_else(|| format!("{key:?} must be an array {}", sj.at()))?;
    let mut out = Vec::with_capacity(arr.len());
    for (i, el) in arr.iter().enumerate() {
        match parse(el) {
            Ok(v) => out.push(v),
            Err((kind, what)) => q.note(kind, format!("{key}[{i}] {}: {what}", el.at())),
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Record writers (compact fixed-arity arrays)
// ---------------------------------------------------------------------------

fn push_u64(o: &mut String, v: u64) {
    o.push_str(&v.to_string());
}

fn push_time(o: &mut String, t: SimTime) {
    o.push_str(&t.as_millis().to_string());
}

fn push_opt_u64(o: &mut String, v: Option<u64>) {
    match v {
        Some(v) => push_u64(o, v),
        None => o.push_str("null"),
    }
}

fn io_mode_str(m: IoMode) -> &'static str {
    match m {
        IoMode::StageIn => "stage_in",
        IoMode::DirectIo => "direct_io",
    }
}

fn job_status_str(s: JobStatus) -> &'static str {
    match s {
        JobStatus::Finished => "finished",
        JobStatus::Failed => "failed",
    }
}

fn task_status_str(s: TaskStatus) -> &'static str {
    match s {
        TaskStatus::Done => "done",
        TaskStatus::Failed => "failed",
    }
}

fn direction_str(d: FileDirection) -> &'static str {
    match d {
        FileDirection::Input => "input",
        FileDirection::Output => "output",
    }
}

fn activity_str(a: Activity) -> &'static str {
    match a {
        Activity::AnalysisDownload => "analysis_download",
        Activity::AnalysisUpload => "analysis_upload",
        Activity::AnalysisDownloadDirectIo => "analysis_download_direct_io",
        Activity::ProductionUpload => "production_upload",
        Activity::ProductionDownload => "production_download",
        Activity::DataRebalancing => "data_rebalancing",
        Activity::TapeRecall => "tape_recall",
        Activity::DataConsolidation => "data_consolidation",
    }
}

fn write_job(o: &mut String, j: &JobRecord) {
    o.push('[');
    push_u64(o, j.pandaid);
    o.push(',');
    push_u64(o, j.jeditaskid);
    o.push(',');
    push_u64(o, j.computingsite.0 as u64);
    o.push(',');
    push_time(o, j.creationtime);
    o.push(',');
    push_time(o, j.starttime);
    o.push(',');
    push_time(o, j.endtime);
    o.push(',');
    push_u64(o, j.ninputfilebytes);
    o.push(',');
    push_u64(o, j.noutputfilebytes);
    o.push_str(",\"");
    o.push_str(io_mode_str(j.io_mode));
    o.push_str("\",\"");
    o.push_str(job_status_str(j.status));
    o.push_str("\",\"");
    o.push_str(task_status_str(j.task_status));
    o.push_str("\",");
    push_opt_u64(o, j.error_code.map(u64::from));
    o.push(',');
    o.push_str(if j.is_user_analysis { "true" } else { "false" });
    o.push(']');
}

fn write_file(o: &mut String, f: &FileRecord) {
    o.push('[');
    push_u64(o, f.pandaid);
    o.push(',');
    push_u64(o, f.jeditaskid);
    o.push(',');
    push_u64(o, f.lfn.0 as u64);
    o.push(',');
    push_u64(o, f.dataset.0 as u64);
    o.push(',');
    push_u64(o, f.proddblock.0 as u64);
    o.push(',');
    push_u64(o, f.scope.0 as u64);
    o.push(',');
    push_u64(o, f.file_size);
    o.push_str(",\"");
    o.push_str(direction_str(f.direction));
    o.push_str("\"]");
}

fn write_transfer(o: &mut String, t: &TransferRecord) {
    o.push('[');
    push_u64(o, t.transfer_id);
    o.push(',');
    push_u64(o, t.lfn.0 as u64);
    o.push(',');
    push_u64(o, t.dataset.0 as u64);
    o.push(',');
    push_u64(o, t.proddblock.0 as u64);
    o.push(',');
    push_u64(o, t.scope.0 as u64);
    o.push(',');
    push_u64(o, t.file_size);
    o.push(',');
    push_time(o, t.starttime);
    o.push(',');
    push_time(o, t.endtime);
    o.push(',');
    push_u64(o, t.source_site.0 as u64);
    o.push(',');
    push_u64(o, t.destination_site.0 as u64);
    o.push_str(",\"");
    o.push_str(activity_str(t.activity));
    o.push_str("\",");
    push_opt_u64(o, t.jeditaskid);
    o.push(',');
    o.push_str(if t.is_download { "true" } else { "false" });
    o.push(',');
    o.push_str(if t.is_upload { "true" } else { "false" });
    o.push(',');
    push_u64(o, t.attempt as u64);
    o.push(',');
    o.push_str(if t.succeeded { "true" } else { "false" });
    o.push(',');
    push_opt_u64(o, t.gt_pandaid);
    o.push(',');
    push_u64(o, t.gt_source_site.0 as u64);
    o.push(',');
    push_u64(o, t.gt_destination_site.0 as u64);
    o.push(',');
    push_u64(o, t.gt_file_size);
    o.push(']');
}

fn write_health(o: &mut String, h: &HealthSummary) {
    o.push_str("{\"episodes\":[");
    for (i, e) in h.episodes.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push('[');
        match e.subject {
            HealthSubject::Site(s) => {
                o.push_str("\"site\",");
                push_u64(o, s.0 as u64);
            }
            HealthSubject::Link { src, dst } => {
                o.push_str("\"link\",");
                push_u64(o, src.0 as u64);
                o.push(',');
                push_u64(o, dst.0 as u64);
            }
        }
        o.push(',');
        push_time(o, e.from);
        o.push(',');
        push_time(o, e.until);
        o.push(']');
    }
    o.push_str("],\"counters\":[");
    for (i, v) in [
        h.counters.site_refusals,
        h.counters.link_refusals,
        h.counters.probes_granted,
        h.counters.trips,
    ]
    .iter()
    .enumerate()
    {
        if i > 0 {
            o.push(',');
        }
        push_u64(o, *v);
    }
    o.push_str("]}");
}

// ---------------------------------------------------------------------------
// Record parsers (quarantine on failure)
// ---------------------------------------------------------------------------

type RecErr = (Kind, String);

/// A record must be an array of exactly `arity` fields. Fewer is broken
/// structure; *more* means a newer writer appended fields — version skew.
fn rec_arr(el: &Json, arity: usize) -> Result<&[Json], RecErr> {
    let arr = el
        .as_arr()
        .ok_or((Kind::Malformed, "record is not an array".to_string()))?;
    if arr.len() < arity {
        return Err((
            Kind::Malformed,
            format!("expected {arity} fields, got {}", arr.len()),
        ));
    }
    if arr.len() > arity {
        return Err((
            Kind::VersionSkew,
            format!("{} fields where this build knows {arity}", arr.len()),
        ));
    }
    Ok(arr)
}

fn rec_u64(el: &Json, what: &str) -> Result<u64, RecErr> {
    el.as_u64().ok_or_else(|| {
        (
            Kind::Malformed,
            format!("{what} is not an unsigned integer"),
        )
    })
}

fn rec_bool(el: &Json, what: &str) -> Result<bool, RecErr> {
    el.as_bool()
        .ok_or_else(|| (Kind::Malformed, format!("{what} is not a boolean")))
}

fn rec_time(el: &Json, what: &str) -> Result<SimTime, RecErr> {
    let ms = el
        .as_i64()
        .ok_or_else(|| (Kind::Malformed, format!("{what} is not a timestamp")))?;
    if ms < 0 {
        return Err((
            Kind::OutOfRangeTime,
            format!("{what} is negative ({ms} ms)"),
        ));
    }
    Ok(SimTime::from_millis(ms))
}

fn rec_span(arr: &[Json], si: usize, ei: usize, what: &str) -> Result<(SimTime, SimTime), RecErr> {
    let s = rec_time(&arr[si], &format!("{what} start"))?;
    let e = rec_time(&arr[ei], &format!("{what} end"))?;
    if e < s {
        return Err((
            Kind::OutOfRangeTime,
            format!(
                "{what} ends before it starts ({} < {} ms)",
                e.as_millis(),
                s.as_millis()
            ),
        ));
    }
    Ok((s, e))
}

fn rec_sym(el: &Json, n_syms: u32, what: &str) -> Result<Sym, RecErr> {
    let v = rec_u64(el, what)?;
    if v >= n_syms as u64 {
        return Err((
            Kind::UnknownSiteSym,
            format!("{what} references symbol {v}, table has {n_syms}"),
        ));
    }
    Ok(Sym(v as u32))
}

fn rec_enum<'a>(el: &'a Json, what: &str) -> Result<&'a str, RecErr> {
    let s = el
        .as_str()
        .ok_or_else(|| (Kind::Malformed, format!("{what} is not a string")))?;
    if s.contains('\u{FFFD}') {
        return Err((
            Kind::BadUtf8,
            format!("{what} contains lossily-decoded bytes"),
        ));
    }
    Ok(s)
}

fn rec_opt_u64(el: &Json, what: &str) -> Result<Option<u64>, RecErr> {
    if el.is_null() {
        Ok(None)
    } else {
        rec_u64(el, what).map(Some)
    }
}

fn parse_job(el: &Json, n_syms: u32) -> Result<JobRecord, RecErr> {
    let a = rec_arr(el, 13)?;
    let creationtime = rec_time(&a[3], "creationtime")?;
    let (starttime, endtime) = rec_span(a, 4, 5, "job")?;
    let io_mode = match rec_enum(&a[8], "io_mode")? {
        "stage_in" => IoMode::StageIn,
        "direct_io" => IoMode::DirectIo,
        other => return Err(skew("io_mode", other)),
    };
    let status = match rec_enum(&a[9], "status")? {
        "finished" => JobStatus::Finished,
        "failed" => JobStatus::Failed,
        other => return Err(skew("status", other)),
    };
    let task_status = match rec_enum(&a[10], "task_status")? {
        "done" => TaskStatus::Done,
        "failed" => TaskStatus::Failed,
        other => return Err(skew("task_status", other)),
    };
    let error_code = match rec_opt_u64(&a[11], "error_code")? {
        None => None,
        Some(v) if v <= u32::MAX as u64 => Some(v as u32),
        Some(v) => return Err((Kind::Malformed, format!("error_code {v} out of range"))),
    };
    Ok(JobRecord {
        pandaid: rec_u64(&a[0], "pandaid")?,
        jeditaskid: rec_u64(&a[1], "jeditaskid")?,
        computingsite: rec_sym(&a[2], n_syms, "computingsite")?,
        creationtime,
        starttime,
        endtime,
        ninputfilebytes: rec_u64(&a[6], "ninputfilebytes")?,
        noutputfilebytes: rec_u64(&a[7], "noutputfilebytes")?,
        io_mode,
        status,
        task_status,
        error_code,
        is_user_analysis: rec_bool(&a[12], "is_user_analysis")?,
    })
}

fn parse_file(el: &Json, n_syms: u32) -> Result<FileRecord, RecErr> {
    let a = rec_arr(el, 8)?;
    let direction = match rec_enum(&a[7], "direction")? {
        "input" => FileDirection::Input,
        "output" => FileDirection::Output,
        other => return Err(skew("direction", other)),
    };
    Ok(FileRecord {
        pandaid: rec_u64(&a[0], "pandaid")?,
        jeditaskid: rec_u64(&a[1], "jeditaskid")?,
        lfn: rec_sym(&a[2], n_syms, "lfn")?,
        dataset: rec_sym(&a[3], n_syms, "dataset")?,
        proddblock: rec_sym(&a[4], n_syms, "proddblock")?,
        scope: rec_sym(&a[5], n_syms, "scope")?,
        file_size: rec_u64(&a[6], "file_size")?,
        direction,
    })
}

fn parse_transfer(el: &Json, n_syms: u32) -> Result<TransferRecord, RecErr> {
    let a = rec_arr(el, 20)?;
    let (starttime, endtime) = rec_span(a, 6, 7, "transfer")?;
    let activity = match rec_enum(&a[10], "activity")? {
        "analysis_download" => Activity::AnalysisDownload,
        "analysis_upload" => Activity::AnalysisUpload,
        "analysis_download_direct_io" => Activity::AnalysisDownloadDirectIo,
        "production_upload" => Activity::ProductionUpload,
        "production_download" => Activity::ProductionDownload,
        "data_rebalancing" => Activity::DataRebalancing,
        "tape_recall" => Activity::TapeRecall,
        "data_consolidation" => Activity::DataConsolidation,
        other => return Err(skew("activity", other)),
    };
    let attempt = match rec_u64(&a[14], "attempt")? {
        v if v >= 1 && v <= u32::MAX as u64 => v as u32,
        v => return Err((Kind::Malformed, format!("attempt {v} out of range"))),
    };
    Ok(TransferRecord {
        transfer_id: rec_u64(&a[0], "transfer_id")?,
        lfn: rec_sym(&a[1], n_syms, "lfn")?,
        dataset: rec_sym(&a[2], n_syms, "dataset")?,
        proddblock: rec_sym(&a[3], n_syms, "proddblock")?,
        scope: rec_sym(&a[4], n_syms, "scope")?,
        file_size: rec_u64(&a[5], "file_size")?,
        starttime,
        endtime,
        source_site: rec_sym(&a[8], n_syms, "source_site")?,
        destination_site: rec_sym(&a[9], n_syms, "destination_site")?,
        activity,
        jeditaskid: rec_opt_u64(&a[11], "jeditaskid")?,
        is_download: rec_bool(&a[12], "is_download")?,
        is_upload: rec_bool(&a[13], "is_upload")?,
        attempt,
        succeeded: rec_bool(&a[15], "succeeded")?,
        gt_pandaid: rec_opt_u64(&a[16], "gt_pandaid")?,
        gt_source_site: rec_sym(&a[17], n_syms, "gt_source_site")?,
        gt_destination_site: rec_sym(&a[18], n_syms, "gt_destination_site")?,
        gt_file_size: rec_u64(&a[19], "gt_file_size")?,
    })
}

fn skew(what: &str, found: &str) -> RecErr {
    (
        Kind::VersionSkew,
        format!("unknown {what} value {found:?} (newer writer?)"),
    )
}

fn parse_health(h: &Json, q: &mut QuarantineReport) -> Result<HealthSummary, String> {
    let ej = h
        .get("episodes")
        .ok_or_else(|| format!("\"health\" has no episodes {}", h.at()))?;
    let arr = ej
        .as_arr()
        .ok_or_else(|| format!("health episodes must be an array {}", ej.at()))?;
    let mut episodes = Vec::with_capacity(arr.len());
    for (i, el) in arr.iter().enumerate() {
        match parse_episode(el) {
            Ok(e) => episodes.push(e),
            Err((kind, what)) => q.note(kind, format!("health.episodes[{i}] {}: {what}", el.at())),
        }
    }
    let cj = h
        .get("counters")
        .ok_or_else(|| format!("\"health\" has no counters {}", h.at()))?;
    let vals: Option<Vec<u64>> = cj
        .as_arr()
        .and_then(|a| a.iter().map(|e| e.as_u64()).collect());
    let counters = match vals.as_deref() {
        Some([a, b, c, d]) => HealthCounters {
            site_refusals: *a,
            link_refusals: *b,
            probes_granted: *c,
            trips: *d,
        },
        _ => return Err(format!("health counters must be four integers {}", cj.at())),
    };
    Ok(HealthSummary { episodes, counters })
}

fn parse_episode(el: &Json) -> Result<OpenEpisode, RecErr> {
    let arr = el
        .as_arr()
        .ok_or((Kind::Malformed, "episode is not an array".to_string()))?;
    let site_id = |e: &Json, what: &str| -> Result<SiteId, RecErr> {
        let v = rec_u64(e, what)?;
        u32::try_from(v)
            .map(SiteId)
            .map_err(|_| (Kind::Malformed, format!("{what} {v} out of range")))
    };
    let (subject, ti) = match arr.first().and_then(|t| t.as_str()) {
        Some("site") if arr.len() == 4 => (HealthSubject::Site(site_id(&arr[1], "site")?), 2),
        Some("link") if arr.len() == 5 => (
            HealthSubject::Link {
                src: site_id(&arr[1], "link src")?,
                dst: site_id(&arr[2], "link dst")?,
            },
            3,
        ),
        Some(s) if s.contains('\u{FFFD}') => {
            return Err((Kind::BadUtf8, "subject tag contains lossy bytes".into()))
        }
        Some(other @ ("site" | "link")) => {
            return Err((Kind::Malformed, format!("{other} episode has wrong arity")))
        }
        Some(other) => return Err(skew("episode subject", other)),
        None => return Err((Kind::Malformed, "episode subject missing".into())),
    };
    let (from, until) = (
        rec_time(&arr[ti], "episode from")?,
        rec_time(&arr[ti + 1], "episode until")?,
    );
    if until < from {
        return Err((
            Kind::OutOfRangeTime,
            "episode ends before it starts".to_string(),
        ));
    }
    Ok(OpenEpisode {
        subject,
        from,
        until,
    })
}

// ---------------------------------------------------------------------------
// Config codec (named fields, hard errors — provenance is not optional)
// ---------------------------------------------------------------------------

fn write_config(o: &mut String, c: &ScenarioConfig) {
    o.push_str("{\"seed\":");
    push_u64(o, c.seed);
    let t = &c.topology;
    o.push_str(",\"topology\":{");
    kv_u64(o, "n_tier1", t.n_tier1 as u64, true);
    kv_u64(o, "n_tier2", t.n_tier2 as u64, false);
    kv_u64(o, "n_tier3", t.n_tier3 as u64, false);
    kv_f64(o, "activity_pareto_shape", t.activity_pareto_shape);
    kv_f64(
        o,
        "single_stream_site_fraction",
        t.single_stream_site_fraction,
    );
    kv_u64(o, "t2_compute_slots", t.t2_compute_slots as u64, false);
    kv_u64(o, "t2_disk_capacity_bytes", t.t2_disk_capacity_bytes, false);
    let w = &c.workload;
    o.push_str("},\"workload\":{");
    kv_f64_first(o, "tasks_per_hour", w.tasks_per_hour);
    kv_f64(o, "production_fraction", w.production_fraction);
    kv_f64(o, "direct_io_fraction", w.direct_io_fraction);
    kv_f64(o, "recorded_stagein_fraction", w.recorded_stagein_fraction);
    kv_f64(o, "doomed_task_fraction", w.doomed_task_fraction);
    kv_f64(o, "median_file_bytes", w.median_file_bytes);
    kv_f64(o, "file_size_sigma", w.file_size_sigma);
    kv_f64(o, "median_walltime_secs", w.median_walltime_secs);
    kv_f64(o, "walltime_sigma", w.walltime_sigma);
    kv_f64(o, "median_jobs_per_task", w.median_jobs_per_task);
    kv_f64(o, "median_jobs_per_prod_task", w.median_jobs_per_prod_task);
    kv_u64(
        o,
        "max_files_per_dataset",
        w.max_files_per_dataset as u64,
        false,
    );
    kv_f64(o, "output_ratio", w.output_ratio);
    let b = &c.broker;
    o.push_str("},\"broker\":{");
    kv_f64_first(o, "hot_backlog_threshold", b.hot_backlog_threshold);
    kv_f64(o, "remote_when_hot_prob", b.remote_when_hot_prob);
    kv_f64(o, "random_remote_prob", b.random_remote_prob);
    let fm = &c.failure;
    o.push_str("},\"failure\":{");
    kv_f64_first(o, "base_fail_prob", fm.base_fail_prob);
    kv_f64(o, "doomed_fail_prob", fm.doomed_fail_prob);
    kv_f64(o, "staging_coupling", fm.staging_coupling);
    let fc = &c.faults;
    o.push_str("},\"faults\":{");
    kv_f64_first(o, "p_attempt_failure", fc.p_attempt_failure);
    kv_f64(o, "site_outage_fraction", fc.site_outage_fraction);
    kv_f64(o, "link_outage_fraction", fc.link_outage_fraction);
    kv_f64(o, "p_outage_failure", fc.p_outage_failure);
    let r = &c.retry;
    o.push_str("},\"retry\":{");
    kv_u64(o, "max_retries", r.max_retries as u64, true);
    kv_u64(
        o,
        "backoff_base_ms",
        r.backoff_base.as_millis() as u64,
        false,
    );
    kv_f64(o, "backoff_factor", r.backoff_factor);
    kv_f64(o, "backoff_jitter", r.backoff_jitter);
    kv_u64(o, "backoff_max_ms", r.backoff_max.as_millis() as u64, false);
    let h = &c.health;
    o.push_str("},\"health\":{");
    o.push_str("\"enabled\":");
    o.push_str(if h.enabled { "true" } else { "false" });
    kv_u64(o, "window_ms", h.window.as_millis() as u64, false);
    kv_u64(o, "min_samples", h.min_samples as u64, false);
    kv_f64(o, "failure_rate_threshold", h.failure_rate_threshold);
    kv_u64(
        o,
        "consecutive_failures",
        h.consecutive_failures as u64,
        false,
    );
    kv_u64(o, "cooldown_ms", h.cooldown.as_millis() as u64, false);
    kv_u64(o, "probe_quota", h.probe_quota as u64, false);
    kv_u64(o, "probe_successes", h.probe_successes as u64, false);
    let cm = &c.corruption;
    o.push_str("},\"corruption\":{");
    kv_f64_first(o, "p_drop_taskid", cm.p_drop_taskid);
    kv_f64(o, "p_unknown_site", cm.p_unknown_site);
    kv_f64(o, "p_invalid_site", cm.p_invalid_site);
    kv_f64(o, "p_size_jitter", cm.p_size_jitter);
    kv_u64(o, "max_jitter_bytes", cm.max_jitter_bytes, false);
    kv_f64(o, "p_drop_transfer", cm.p_drop_transfer);
    kv_f64(o, "p_drop_file_record", cm.p_drop_file_record);
    kv_f64(o, "p_input_bytes_jitter", cm.p_input_bytes_jitter);
    kv_f64(o, "p_output_bytes_jitter", cm.p_output_bytes_jitter);
    kv_f64(o, "p_task_size_jitter", cm.p_task_size_jitter);
    kv_f64(o, "p_task_unknown_site", cm.p_task_unknown_site);
    kv_f64(o, "p_task_drop_taskid", cm.p_task_drop_taskid);
    kv_f64(o, "p_clear_attempt", cm.p_clear_attempt);
    o.push_str("},\"duration_ms\":");
    o.push_str(&c.duration.as_millis().to_string());
    kv_f64(
        o,
        "background_transfers_per_hour",
        c.background_transfers_per_hour,
    );
    kv_f64(o, "background_local_fraction", c.background_local_fraction);
    kv_f64(o, "upload_recorded_fraction", c.upload_recorded_fraction);
    kv_f64(o, "upload_remote_fraction", c.upload_remote_fraction);
    kv_f64(o, "dio_full_read_fraction", c.dio_full_read_fraction);
    kv_f64(o, "dio_recorded_fraction", c.dio_recorded_fraction);
    kv_f64(o, "prod_download_fraction", c.prod_download_fraction);
    kv_f64(o, "p_start_before_staging", c.p_start_before_staging);
    kv_f64(o, "p_sequential_stagein", c.p_sequential_stagein);
    kv_f64(o, "prestage_fraction", c.prestage_fraction);
    kv_u64(o, "initial_datasets", c.initial_datasets as u64, false);
    kv_u64(
        o,
        "max_replicas_per_dataset",
        c.max_replicas_per_dataset as u64,
        false,
    );
    o.push('}');
}

fn kv_u64(o: &mut String, key: &str, v: u64, first: bool) {
    if !first {
        o.push(',');
    }
    o.push('"');
    o.push_str(key);
    o.push_str("\":");
    push_u64(o, v);
}

fn kv_f64_first(o: &mut String, key: &str, v: f64) {
    o.push('"');
    o.push_str(key);
    o.push_str("\":");
    json::push_f64(o, v);
}

fn kv_f64(o: &mut String, key: &str, v: f64) {
    o.push(',');
    kv_f64_first(o, key, v);
}

fn cfg_field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, String> {
    obj.get(key)
        .ok_or_else(|| format!("config is missing {key:?} ({})", obj.at()))
}

fn cfg_f64(obj: &Json, key: &str) -> Result<f64, String> {
    let f = cfg_field(obj, key)?;
    f.as_f64()
        .ok_or_else(|| format!("config {key:?} is not a number {}", f.at()))
}

fn cfg_u64(obj: &Json, key: &str) -> Result<u64, String> {
    let f = cfg_field(obj, key)?;
    f.as_u64()
        .ok_or_else(|| format!("config {key:?} is not an unsigned integer {}", f.at()))
}

fn cfg_u32(obj: &Json, key: &str) -> Result<u32, String> {
    let v = cfg_u64(obj, key)?;
    u32::try_from(v).map_err(|_| format!("config {key:?} = {v} does not fit in u32"))
}

fn cfg_usize(obj: &Json, key: &str) -> Result<usize, String> {
    cfg_u64(obj, key).map(|v| v as usize)
}

fn cfg_ms(obj: &Json, key: &str) -> Result<SimDuration, String> {
    let f = cfg_field(obj, key)?;
    f.as_i64()
        .map(SimDuration::from_millis)
        .ok_or_else(|| format!("config {key:?} is not a millisecond count {}", f.at()))
}

fn cfg_bool(obj: &Json, key: &str) -> Result<bool, String> {
    let f = cfg_field(obj, key)?;
    f.as_bool()
        .ok_or_else(|| format!("config {key:?} is not a boolean {}", f.at()))
}

fn parse_config(j: &Json) -> Result<ScenarioConfig, String> {
    let t = cfg_field(j, "topology")?;
    let w = cfg_field(j, "workload")?;
    let b = cfg_field(j, "broker")?;
    let fm = cfg_field(j, "failure")?;
    let fc = cfg_field(j, "faults")?;
    let r = cfg_field(j, "retry")?;
    let h = cfg_field(j, "health")?;
    let cm = cfg_field(j, "corruption")?;
    Ok(ScenarioConfig {
        seed: cfg_u64(j, "seed")?,
        topology: TopologyConfig {
            n_tier1: cfg_usize(t, "n_tier1")?,
            n_tier2: cfg_usize(t, "n_tier2")?,
            n_tier3: cfg_usize(t, "n_tier3")?,
            activity_pareto_shape: cfg_f64(t, "activity_pareto_shape")?,
            single_stream_site_fraction: cfg_f64(t, "single_stream_site_fraction")?,
            t2_compute_slots: cfg_u32(t, "t2_compute_slots")?,
            t2_disk_capacity_bytes: cfg_u64(t, "t2_disk_capacity_bytes")?,
        },
        workload: WorkloadParams {
            tasks_per_hour: cfg_f64(w, "tasks_per_hour")?,
            production_fraction: cfg_f64(w, "production_fraction")?,
            direct_io_fraction: cfg_f64(w, "direct_io_fraction")?,
            recorded_stagein_fraction: cfg_f64(w, "recorded_stagein_fraction")?,
            doomed_task_fraction: cfg_f64(w, "doomed_task_fraction")?,
            median_file_bytes: cfg_f64(w, "median_file_bytes")?,
            file_size_sigma: cfg_f64(w, "file_size_sigma")?,
            median_walltime_secs: cfg_f64(w, "median_walltime_secs")?,
            walltime_sigma: cfg_f64(w, "walltime_sigma")?,
            median_jobs_per_task: cfg_f64(w, "median_jobs_per_task")?,
            median_jobs_per_prod_task: cfg_f64(w, "median_jobs_per_prod_task")?,
            max_files_per_dataset: cfg_u32(w, "max_files_per_dataset")?,
            output_ratio: cfg_f64(w, "output_ratio")?,
        },
        broker: BrokerConfig {
            hot_backlog_threshold: cfg_f64(b, "hot_backlog_threshold")?,
            remote_when_hot_prob: cfg_f64(b, "remote_when_hot_prob")?,
            random_remote_prob: cfg_f64(b, "random_remote_prob")?,
        },
        failure: FailureModel {
            base_fail_prob: cfg_f64(fm, "base_fail_prob")?,
            doomed_fail_prob: cfg_f64(fm, "doomed_fail_prob")?,
            staging_coupling: cfg_f64(fm, "staging_coupling")?,
        },
        faults: FaultConfig {
            p_attempt_failure: cfg_f64(fc, "p_attempt_failure")?,
            site_outage_fraction: cfg_f64(fc, "site_outage_fraction")?,
            link_outage_fraction: cfg_f64(fc, "link_outage_fraction")?,
            p_outage_failure: cfg_f64(fc, "p_outage_failure")?,
        },
        retry: RetryPolicy {
            max_retries: cfg_u32(r, "max_retries")?,
            backoff_base: cfg_ms(r, "backoff_base_ms")?,
            backoff_factor: cfg_f64(r, "backoff_factor")?,
            backoff_jitter: cfg_f64(r, "backoff_jitter")?,
            backoff_max: cfg_ms(r, "backoff_max_ms")?,
        },
        health: HealthConfig {
            enabled: cfg_bool(h, "enabled")?,
            window: cfg_ms(h, "window_ms")?,
            min_samples: cfg_u32(h, "min_samples")?,
            failure_rate_threshold: cfg_f64(h, "failure_rate_threshold")?,
            consecutive_failures: cfg_u32(h, "consecutive_failures")?,
            cooldown: cfg_ms(h, "cooldown_ms")?,
            probe_quota: cfg_u32(h, "probe_quota")?,
            probe_successes: cfg_u32(h, "probe_successes")?,
        },
        corruption: CorruptionModel {
            p_drop_taskid: cfg_f64(cm, "p_drop_taskid")?,
            p_unknown_site: cfg_f64(cm, "p_unknown_site")?,
            p_invalid_site: cfg_f64(cm, "p_invalid_site")?,
            p_size_jitter: cfg_f64(cm, "p_size_jitter")?,
            max_jitter_bytes: cfg_u64(cm, "max_jitter_bytes")?,
            p_drop_transfer: cfg_f64(cm, "p_drop_transfer")?,
            p_drop_file_record: cfg_f64(cm, "p_drop_file_record")?,
            p_input_bytes_jitter: cfg_f64(cm, "p_input_bytes_jitter")?,
            p_output_bytes_jitter: cfg_f64(cm, "p_output_bytes_jitter")?,
            p_task_size_jitter: cfg_f64(cm, "p_task_size_jitter")?,
            p_task_unknown_site: cfg_f64(cm, "p_task_unknown_site")?,
            p_task_drop_taskid: cfg_f64(cm, "p_task_drop_taskid")?,
            p_clear_attempt: cfg_f64(cm, "p_clear_attempt")?,
        },
        duration: cfg_ms(j, "duration_ms")?,
        background_transfers_per_hour: cfg_f64(j, "background_transfers_per_hour")?,
        background_local_fraction: cfg_f64(j, "background_local_fraction")?,
        upload_recorded_fraction: cfg_f64(j, "upload_recorded_fraction")?,
        upload_remote_fraction: cfg_f64(j, "upload_remote_fraction")?,
        dio_full_read_fraction: cfg_f64(j, "dio_full_read_fraction")?,
        dio_recorded_fraction: cfg_f64(j, "dio_recorded_fraction")?,
        prod_download_fraction: cfg_f64(j, "prod_download_fraction")?,
        p_start_before_staging: cfg_f64(j, "p_start_before_staging")?,
        p_sequential_stagein: cfg_f64(j, "p_sequential_stagein")?,
        prestage_fraction: cfg_f64(j, "prestage_fraction")?,
        initial_datasets: cfg_usize(j, "initial_datasets")?,
        max_replicas_per_dataset: cfg_usize(j, "max_replicas_per_dataset")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_round_trips_through_json() {
        let campaign = dmsa_scenario::run(&tiny_config());
        let export = CampaignExport::from_campaign(&campaign);
        let json = export.to_json();
        let back = CampaignExport::from_json(&json).unwrap();
        assert_eq!(back.version, FORMAT_VERSION);
        assert_eq!(back.window, campaign.window);
        assert_eq!(back.store.counts(), campaign.store.counts());
        assert_eq!(back.config.seed, campaign.config.seed);
        // Exact, not just structural: re-serializing the reloaded export
        // reproduces the original bytes (config floats included).
        assert_eq!(CampaignExport::from_campaign(&campaign).to_json(), json);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let campaign = dmsa_scenario::run(&tiny_config());
        let mut export = CampaignExport::from_campaign(&campaign);
        export.version = 999;
        let json = export.to_json();
        match CampaignExport::from_json(&json) {
            Err(err) => {
                assert!(err.contains("version 999"), "unclear error: {err}");
                assert!(err.contains("supports 1"), "no found-vs-supported: {err}");
                assert!(err.contains("line 1 column"), "no position: {err}");
            }
            Ok(_) => panic!("version mismatch accepted"),
        }
        // Even the lenient loader refuses a newer format outright.
        assert!(CampaignExport::from_json_lenient(&json).is_err());
    }

    #[test]
    fn matching_on_reimported_store_is_identical() {
        use dmsa_core::matcher::Matcher;
        use dmsa_core::{IndexedMatcher, MatchMethod};
        let campaign = dmsa_scenario::run(&tiny_config());
        let json = CampaignExport::from_campaign(&campaign).to_json();
        let back = CampaignExport::from_json(&json).unwrap();
        let a = IndexedMatcher.match_jobs(&campaign.store, campaign.window, MatchMethod::Rm2);
        let b = IndexedMatcher.match_jobs(&back.store, back.window, MatchMethod::Rm2);
        assert_eq!(a, b);
    }

    #[test]
    fn faulty_adaptive_export_round_trips_health_and_path_stats() {
        let mut c = ScenarioConfig::faulty_adaptive();
        c.duration = dmsa_simcore::SimDuration::from_hours(3);
        c.workload.tasks_per_hour = 10.0;
        c.initial_datasets = 20;
        let campaign = dmsa_scenario::run(&c);
        let export = CampaignExport::from_campaign(&campaign);
        let json = export.to_json();
        let back = CampaignExport::from_json(&json).unwrap();
        assert_eq!(back.path_stats, campaign.path_stats);
        assert_eq!(back.to_json(), json);
        let (h, bh) = (campaign.health.as_ref().unwrap(), back.health.unwrap());
        assert_eq!(h.episodes, bh.episodes);
        assert_eq!(h.counters, bh.counters);
    }

    /// Inject a malformed record at the head of a section; relies on the
    /// writer's stable `"key":[` section anchors.
    fn inject(json: &str, section: &str, record: &str) -> String {
        let anchor = format!("\"{section}\":[");
        let at = json.find(&anchor).expect("section anchor") + anchor.len();
        let sep = if json[at..].starts_with(']') { "" } else { "," };
        format!("{}{record}{sep}{}", &json[..at], &json[at..])
    }

    #[test]
    fn quarantine_counts_each_error_kind() {
        let campaign = dmsa_scenario::run(&tiny_config());
        let json = CampaignExport::from_campaign(&campaign).to_json();
        // One of each taxonomy kind:
        let json = inject(&json, "files", "[1,2,3]"); // arity too small -> malformed
        let json = inject(
            &json,
            "jobs",
            "[1,1,999999,0,0,1,0,0,\"stage_in\",\"finished\",\"done\",null,true]",
        ); // symbol past table -> unknown-site-sym
        let json = inject(
            &json,
            "transfers",
            "[1,0,0,0,0,10,500,100,0,0,\"analysis_upload\",null,false,true,1,true,null,0,0,10]",
        ); // end < start -> out-of-range-time
        let json = inject(
            &json,
            "transfers",
            "[1,0,0,0,0,10,100,500,0,0,\"quantum_teleport\",null,false,true,1,true,null,0,0,10]",
        ); // unknown activity -> version-skew
        let json = inject(
            &json,
            "jobs",
            "[1,1,0,0,0,1,0,0,\"stage_in\",\"finish\u{FFFD}d\",\"done\",null,true]",
        ); // lossy bytes in enum -> bad-utf8
        let loaded = CampaignExport::from_json_lenient(&json).unwrap();
        let q = &loaded.quarantine;
        assert_eq!(q.malformed, 1, "{q:?}");
        assert_eq!(q.unknown_site_sym, 1, "{q:?}");
        assert_eq!(q.out_of_range_time, 1, "{q:?}");
        assert_eq!(q.version_skew, 1, "{q:?}");
        assert_eq!(q.bad_utf8, 1, "{q:?}");
        assert_eq!(q.total(), 5);
        // The surviving store is intact: every original record loaded.
        assert_eq!(loaded.export.store.counts(), campaign.store.counts());
        // Examples carry positions for the report.
        assert!(q.examples.iter().any(|e| e.contains("line 1 column")));
        let report = q.render();
        assert!(report.contains("quarantined records: 5"));
        assert!(report.contains("bad-utf8           1"));

        // The strict loader refuses the same bytes, naming the counts.
        let err = CampaignExport::from_json(&json)
            .err()
            .expect("strict accepts");
        assert!(err.contains("5 quarantined"), "unclear error: {err}");
        assert!(err.contains("version-skew 1"), "no taxonomy: {err}");
    }

    #[test]
    fn lossy_decoded_bytes_quarantine_only_the_hit_record() {
        let campaign = dmsa_scenario::run(&tiny_config());
        let json = CampaignExport::from_campaign(&campaign).to_json();
        // Simulate a disk/network corruption: a record's enum bytes become
        // invalid UTF-8, and the reader decodes the file lossily (as the
        // CLI does for files that are not valid UTF-8).
        let mut bytes = json.into_bytes();
        let at = bytes
            .windows(12)
            .position(|w| w == b"\"stage_in\",\"")
            .expect("a stage_in job");
        bytes[at + 2] = 0xFF;
        let lossy = String::from_utf8_lossy(&bytes).into_owned();
        let loaded = CampaignExport::from_json_lenient(&lossy).unwrap();
        assert_eq!(loaded.quarantine.bad_utf8, 1);
        assert_eq!(loaded.quarantine.total(), 1);
        let (jobs, ..) = loaded.export.store.counts();
        assert_eq!(jobs, campaign.store.jobs.len() - 1);
    }

    #[test]
    fn truncated_export_fails_with_position_not_panic() {
        let campaign = dmsa_scenario::run(&tiny_config());
        let json = CampaignExport::from_campaign(&campaign).to_json();
        for cut in [0, 1, json.len() / 2, json.len() - 1] {
            let err = CampaignExport::from_json(&json[..cut])
                .err()
                .unwrap_or_else(|| panic!("truncation at {cut} accepted"));
            assert!(err.contains("line"), "no position at cut {cut}: {err}");
        }
    }

    fn tiny_config() -> dmsa_scenario::ScenarioConfig {
        let mut c = dmsa_scenario::ScenarioConfig::small();
        c.duration = dmsa_simcore::SimDuration::from_hours(3);
        c.workload.tasks_per_hour = 10.0;
        c.background_transfers_per_hour = 50.0;
        c.initial_datasets = 20;
        c
    }
}
