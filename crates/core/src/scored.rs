//! Scored (probabilistic) matching — an extension beyond the paper.
//!
//! The paper's three strategies are *binary*: a candidate either passes
//! every filter or is discarded. §4.3 concedes that "any advanced
//! algorithm trying to capture these cases would still be approximate";
//! this module builds that approximate algorithm and — because the
//! simulator has ground truth — measures exactly what the approximation
//! buys.
//!
//! Each candidate (job, transfer) pair receives a score in `[0, 1]`
//! composed of independent evidence terms:
//!
//! * **time proximity** — a stage-in should start after the job's creation
//!   and end near its start; an upload should hug the job's end;
//! * **site consistency** — exact endpoint match scores 1, an
//!   unknown/invalid endpoint scores a neutral prior, a *conflicting*
//!   valid endpoint scores 0;
//! * **byte-sum consistency** — how close the per-direction candidate sum
//!   lands to the job's recorded totals (tolerant of the accounting skew
//!   RM1 throws away entirely).
//!
//! Thresholding the score yields a tunable precision/recall trade-off:
//! `threshold → 1` approaches exact matching, low thresholds approach
//! RM2-with-extra-recall. [`ScoredMatcher::match_jobs_scored`] returns the
//! scores so callers (and the `ablations` bench) can sweep the curve.

use crate::matcher::Matcher;
use crate::matchset::{MatchSet, MatchedJob};
use crate::method::MatchMethod;
use crate::prepared::PreparedStore;
use dmsa_metastore::{JobRecord, MetaStore, TransferRecord};
use dmsa_simcore::interval::Interval;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Weights and shape parameters of the score.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScoreParams {
    /// Weight of the time-proximity term.
    pub w_time: f64,
    /// Weight of the site-consistency term.
    pub w_site: f64,
    /// Weight of the byte-sum term.
    pub w_bytes: f64,
    /// Neutral prior for unknown/invalid endpoints.
    pub unknown_site_prior: f64,
    /// Time-decay constant (seconds) for out-of-window slack.
    pub time_decay_secs: f64,
    /// Relative byte-sum error at which the bytes term halves.
    pub bytes_half_error: f64,
}

impl Default for ScoreParams {
    fn default() -> Self {
        ScoreParams {
            w_time: 0.35,
            w_site: 0.40,
            w_bytes: 0.25,
            unknown_site_prior: 0.6,
            time_decay_secs: 6.0 * 3_600.0,
            bytes_half_error: 0.02,
        }
    }
}

/// One scored candidate pair.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ScoredPair {
    /// Index into `store.jobs`.
    pub job_idx: u32,
    /// Index into `store.transfers`.
    pub transfer_idx: u32,
    /// Composite score in `[0, 1]`.
    pub score: f64,
}

/// The scored matcher.
#[derive(Clone, Debug, Default)]
pub struct ScoredMatcher {
    params: ScoreParams,
}

impl ScoredMatcher {
    /// Matcher with explicit parameters.
    pub fn new(params: ScoreParams) -> Self {
        ScoredMatcher { params }
    }

    /// Parameters in effect.
    pub fn params(&self) -> &ScoreParams {
        &self.params
    }

    /// Time-proximity evidence for one candidate.
    fn time_score(&self, job: &JobRecord, t: &TransferRecord) -> f64 {
        // Hard floor of Algorithm 1: transfers starting after the job
        // ended can never belong to it.
        if t.starttime >= job.endtime {
            return 0.0;
        }
        // Slack: how far outside [creation, end] the transfer reaches.
        let before = (job.creationtime - t.starttime).clamp_non_negative();
        let slack_secs = before.as_secs_f64();
        (-slack_secs / self.params.time_decay_secs).exp()
    }

    /// Site-consistency evidence.
    fn site_score(&self, job: &JobRecord, t: &TransferRecord, store: &MetaStore) -> f64 {
        let endpoint = if t.is_download {
            t.destination_site
        } else {
            t.source_site
        };
        if endpoint == job.computingsite {
            1.0
        } else if !store.is_valid_site(endpoint) {
            self.params.unknown_site_prior
        } else {
            0.0
        }
    }

    /// Byte-sum evidence for a whole direction group.
    fn bytes_score(&self, group_sum: u64, expected: u64) -> f64 {
        if expected == 0 {
            return if group_sum == 0 { 1.0 } else { 0.5 };
        }
        let rel_err = (group_sum as f64 - expected as f64).abs() / expected as f64;
        // Smooth decay: exact sum scores 1, `bytes_half_error` scores 0.5.
        1.0 / (1.0 + rel_err / self.params.bytes_half_error)
    }

    /// Score every candidate of every user job in `window`.
    ///
    /// Builds a throwaway [`PreparedStore`]; use
    /// [`ScoredMatcher::score_all_prepared`] to reuse one across calls.
    pub fn score_all(&self, store: &MetaStore, window: Interval) -> Vec<ScoredPair> {
        self.score_all_prepared(&PreparedStore::build(store), window)
    }

    /// Score every candidate of every user job in `window`, over a shared
    /// prepared index.
    ///
    /// Candidates whose start time falls at or after the job's end are
    /// pre-filtered by the index's range scan; those pairs carry a time
    /// score of exactly 0 and were discarded here anyway, so the scores
    /// (and sums) are unchanged.
    pub fn score_all_prepared(
        &self,
        prepared: &PreparedStore<'_>,
        window: Interval,
    ) -> Vec<ScoredPair> {
        let store = prepared.store;
        let universe = prepared.window_universe(window);
        universe
            .par_iter()
            .flat_map_iter(|&job_idx| {
                let job = &store.jobs[job_idx as usize];
                let candidates = prepared.candidates(job_idx);
                // Per-direction sums over plausibly matching candidates
                // (time + non-conflicting site), for the bytes term.
                let mut dl_sum = 0u64;
                let mut ul_sum = 0u64;
                let plausible: Vec<(u32, f64, f64)> = candidates
                    .iter()
                    .map(|&ti| {
                        let t = &store.transfers[ti as usize];
                        let ts = self.time_score(job, t);
                        let ss = self.site_score(job, t, store);
                        if ts > 0.0 && ss > 0.0 {
                            if t.is_download {
                                dl_sum += t.file_size;
                            } else {
                                ul_sum += t.file_size;
                            }
                        }
                        (ti, ts, ss)
                    })
                    .collect();
                let dl_bytes = self.bytes_score(dl_sum, job.ninputfilebytes);
                let ul_bytes = self.bytes_score(ul_sum, job.noutputfilebytes);
                let p = self.params.clone();
                plausible
                    .into_iter()
                    .filter(|&(_, ts, ss)| ts > 0.0 && ss > 0.0)
                    .map(move |(ti, ts, ss)| {
                        let is_download = store.transfers[ti as usize].is_download;
                        let bs = if is_download { dl_bytes } else { ul_bytes };
                        ScoredPair {
                            job_idx,
                            transfer_idx: ti,
                            score: p.w_time * ts + p.w_site * ss + p.w_bytes * bs,
                        }
                    })
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    /// Threshold the scores into a [`MatchSet`] (reported under the RM2
    /// label, since scored matching is a strict generalization of it).
    pub fn match_jobs_scored(
        &self,
        store: &MetaStore,
        window: Interval,
        threshold: f64,
    ) -> MatchSet {
        let mut pairs = self.score_all(store, window);
        pairs.retain(|p| p.score >= threshold);
        pairs.sort_by(|a, b| {
            a.job_idx
                .cmp(&b.job_idx)
                .then(a.transfer_idx.cmp(&b.transfer_idx))
        });
        let mut jobs: Vec<MatchedJob> = Vec::new();
        for p in pairs {
            match jobs.last_mut() {
                Some(last) if last.job_idx == p.job_idx => last.transfers.push(p.transfer_idx),
                _ => jobs.push(MatchedJob {
                    job_idx: p.job_idx,
                    transfers: vec![p.transfer_idx],
                }),
            }
        }
        MatchSet {
            method: MatchMethod::Rm2,
            jobs,
        }
    }
}

impl Matcher for ScoredMatcher {
    /// `Matcher` impl at a balanced default threshold of 0.75.
    fn match_jobs(&self, store: &MetaStore, window: Interval, _method: MatchMethod) -> MatchSet {
        self.match_jobs_scored(store, window, 0.75)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::testutil::StoreBuilder;
    use crate::matcher::NaiveMatcher;

    #[test]
    fn perfect_candidates_score_near_one() {
        let mut b = StoreBuilder::new();
        let site = b.site("SITE-A");
        b.job_with_file(1, 10, site, 1_000, 0, 100, 200);
        b.download(1, 10, site, site, 1_000, 10, 50);
        let pairs = ScoredMatcher::default().score_all(&b.store, b.window());
        assert_eq!(pairs.len(), 1);
        assert!(pairs[0].score > 0.95, "score {}", pairs[0].score);
    }

    #[test]
    fn conflicting_site_scores_zero_and_is_dropped() {
        let mut b = StoreBuilder::new();
        let site = b.site("SITE-A");
        let other = b.site("SITE-B");
        b.job_with_file(1, 10, site, 1_000, 0, 100, 200);
        b.download(1, 10, other, other, 1_000, 10, 50);
        let pairs = ScoredMatcher::default().score_all(&b.store, b.window());
        assert!(pairs.is_empty());
    }

    #[test]
    fn unknown_site_scores_between_exact_and_conflict() {
        let mut b = StoreBuilder::new();
        let site = b.site("SITE-A");
        let unknown = dmsa_metastore::SymbolTable::UNKNOWN;
        b.job_with_file(1, 10, site, 1_000, 0, 100, 200);
        b.download(1, 10, site, unknown, 1_000, 10, 50);
        let pairs = ScoredMatcher::default().score_all(&b.store, b.window());
        assert_eq!(pairs.len(), 1);
        assert!(pairs[0].score > 0.5 && pairs[0].score < 0.95);
    }

    #[test]
    fn byte_skew_lowers_score_smoothly() {
        let score_with_skew = |skew: u64| {
            let mut b = StoreBuilder::new();
            let site = b.site("SITE-A");
            b.job_with_file(1, 10, site, 1_000, 0, 100, 200);
            b.store.jobs[0].ninputfilebytes = 1_000 + skew;
            b.download(1, 10, site, site, 1_000, 10, 50);
            ScoredMatcher::default().score_all(&b.store, b.window())[0].score
        };
        let s0 = score_with_skew(0);
        let s1 = score_with_skew(100);
        let s2 = score_with_skew(5_000);
        assert!(s0 > s1 && s1 > s2, "{s0} > {s1} > {s2} expected");
        assert!(s2 > 0.5, "even a bad sum keeps time+site evidence");
    }

    #[test]
    fn high_threshold_approaches_exact_matching() {
        let mut b = StoreBuilder::new();
        let site = b.site("SITE-A");
        // Clean job.
        b.job_with_file(1, 10, site, 1_000, 0, 100, 200);
        b.download(1, 10, site, site, 1_000, 10, 50);
        // Byte-skewed job (RM1 territory).
        b.job_with_file(2, 20, site, 2_000, 0, 100, 200);
        b.store.jobs[1].ninputfilebytes = 9_999;
        b.download(2, 20, site, site, 2_000, 10, 50);
        let w = b.window();
        let exact = NaiveMatcher.match_jobs(&b.store, w, MatchMethod::Exact);
        let strict = ScoredMatcher::default().match_jobs_scored(&b.store, w, 0.99);
        let loose = ScoredMatcher::default().match_jobs_scored(&b.store, w, 0.5);
        assert_eq!(strict.n_matched_jobs(), exact.n_matched_jobs());
        assert_eq!(loose.n_matched_jobs(), 2);
    }

    #[test]
    fn threshold_sweep_is_monotone() {
        let mut b = StoreBuilder::new();
        let site = b.site("SITE-A");
        let unknown = dmsa_metastore::SymbolTable::UNKNOWN;
        for i in 0..20u64 {
            b.job_with_file(i, 100 + i, site, 1_000 + i, 0, 100, 200);
            let dst = if i % 3 == 0 { unknown } else { site };
            b.download(i, 100 + i, site, dst, 1_000 + i, 10, 50);
            if i % 4 == 0 {
                b.store.jobs[i as usize].ninputfilebytes += 17;
            }
        }
        let w = b.window();
        let m = ScoredMatcher::default();
        let mut last = usize::MAX;
        for t in [0.2, 0.5, 0.8, 0.95, 1.01] {
            let n = m.match_jobs_scored(&b.store, w, t).n_matched_transfers();
            assert!(n <= last, "threshold {t} grew the match set");
            last = n;
        }
        assert_eq!(last, 0, "threshold above 1 matches nothing");
    }

    #[test]
    fn late_transfers_never_match_any_threshold() {
        let mut b = StoreBuilder::new();
        let site = b.site("SITE-A");
        b.job_with_file(1, 10, site, 1_000, 0, 100, 200);
        b.download(1, 10, site, site, 1_000, 500, 600); // after job end
        let pairs = ScoredMatcher::default().score_all(&b.store, b.window());
        assert!(pairs.is_empty());
    }
}
