//! Synthetic WLCG-like topology generation.

use crate::config::TopologyConfig;
use crate::site::{Rse, RseId, RseKind, Site, SiteId, Tier};
use dmsa_simcore::RngFactory;
use rand::RngExt;
use rand_distr::{Distribution, Pareto};
use serde::{Deserialize, Serialize};

/// The generated grid: sites, RSEs, and name lookup.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GridTopology {
    sites: Vec<Site>,
    rses: Vec<Rse>,
}

/// Region labels assigned round-robin to generated sites. The first few
/// mirror the locations the paper calls out in Fig 3 (NY USA T1, CERN T0,
/// Switzerland T2, France T2, North Europe T1).
const T1_REGIONS: &[&str] = &[
    "NY, USA",
    "North Europe",
    "France",
    "UK",
    "Germany",
    "Italy",
    "Spain",
    "Canada",
    "Netherlands",
    "Taiwan",
    "Japan",
    "Nordic",
];

const T2_REGIONS: &[&str] = &[
    "Switzerland",
    "France",
    "USA Midwest",
    "USA Southwest",
    "Germany",
    "Italy",
    "Spain",
    "UK",
    "Poland",
    "Czechia",
    "Romania",
    "Israel",
    "Brazil",
    "Australia",
    "South Africa",
    "Slovenia",
    "Portugal",
    "Austria",
    "Greece",
    "Turkey",
];

impl GridTopology {
    /// Generate a topology from `config`, deterministically from `rngs`.
    pub fn generate(rngs: &RngFactory, config: &TopologyConfig) -> Self {
        let mut rng = rngs.stream("gridnet/topology");
        let pareto =
            Pareto::new(1.0, config.activity_pareto_shape).expect("pareto shape must be positive");

        let mut sites = Vec::with_capacity(config.total_sites());
        let mut rses = Vec::new();

        let push_site = |sites: &mut Vec<Site>,
                         rses: &mut Vec<Rse>,
                         name: String,
                         tier: Tier,
                         region: String,
                         rng: &mut dmsa_simcore::SimRng| {
            let id = SiteId(sites.len() as u32);
            // Compute capacity scales by tier with ±30% jitter.
            let tier_mult = match tier {
                Tier::T0 => 6.0,
                Tier::T1 => 3.0,
                Tier::T2 => 1.0,
                Tier::T3 => 0.25,
            };
            let jitter = 0.7 + 0.6 * rng.random::<f64>();
            let compute_slots =
                ((config.t2_compute_slots as f64) * tier_mult * jitter).max(4.0) as u32;

            // Transfer concurrency: hubs sustain many streams; a configured
            // fraction of non-hub sites serialize transfers entirely.
            let transfer_slots = if matches!(tier, Tier::T0 | Tier::T1) {
                rng.random_range(8..=16)
            } else if rng.random::<f64>() < config.single_stream_site_fraction {
                1
            } else {
                rng.random_range(2..=6)
            };

            // Heavy-tailed activity weight, boosted for hub tiers so that
            // the Fig 3 outliers land on T0/T1 cells.
            let tail: f64 = pareto.sample(rng);
            let activity_weight = tail
                * match tier {
                    Tier::T0 => 40.0,
                    Tier::T1 => 10.0,
                    Tier::T2 => 1.0,
                    Tier::T3 => 0.2,
                };

            let mut site_rses = Vec::new();
            let disk_id = RseId(rses.len() as u32);
            rses.push(Rse {
                id: disk_id,
                name: format!("{name}_DATADISK"),
                site: id,
                kind: RseKind::Disk,
                capacity_bytes: (config.t2_disk_capacity_bytes as f64 * tier_mult * jitter) as u64,
            });
            site_rses.push(disk_id);
            if matches!(tier, Tier::T0 | Tier::T1) {
                let tape_id = RseId(rses.len() as u32);
                rses.push(Rse {
                    id: tape_id,
                    name: format!("{name}_MCTAPE"),
                    site: id,
                    kind: RseKind::Tape,
                    capacity_bytes: (50_000_000_000_000_000.0 * tier_mult) as u64,
                });
                site_rses.push(tape_id);
            }

            sites.push(Site {
                id,
                name,
                tier,
                region,
                compute_slots,
                transfer_slots,
                activity_weight,
                rses: site_rses,
            });
        };

        push_site(
            &mut sites,
            &mut rses,
            "CERN-PROD".to_string(),
            Tier::T0,
            "Geneva, Switzerland".to_string(),
            &mut rng,
        );
        for i in 0..config.n_tier1 {
            let region = T1_REGIONS[i % T1_REGIONS.len()];
            push_site(
                &mut sites,
                &mut rses,
                format!("T1-{:02}-{}", i, region_slug(region)),
                Tier::T1,
                region.to_string(),
                &mut rng,
            );
        }
        for i in 0..config.n_tier2 {
            let region = T2_REGIONS[i % T2_REGIONS.len()];
            push_site(
                &mut sites,
                &mut rses,
                format!("T2-{:02}-{}", i, region_slug(region)),
                Tier::T2,
                region.to_string(),
                &mut rng,
            );
        }
        for i in 0..config.n_tier3 {
            let region = T2_REGIONS[(i * 3 + 1) % T2_REGIONS.len()];
            push_site(
                &mut sites,
                &mut rses,
                format!("T3-{:02}-{}", i, region_slug(region)),
                Tier::T3,
                region.to_string(),
                &mut rng,
            );
        }

        GridTopology { sites, rses }
    }

    /// All sites, indexed by `SiteId`.
    pub fn sites(&self) -> &[Site] {
        &self.sites
    }

    /// All RSEs, indexed by `RseId`.
    pub fn rses(&self) -> &[Rse] {
        &self.rses
    }

    /// Site by id.
    pub fn site(&self, id: SiteId) -> &Site {
        &self.sites[id.index()]
    }

    /// RSE by id.
    pub fn rse(&self, id: RseId) -> &Rse {
        &self.rses[id.index()]
    }

    /// Number of sites.
    pub fn n_sites(&self) -> usize {
        self.sites.len()
    }

    /// The Tier-0 site (always generated first).
    pub fn tier0(&self) -> &Site {
        &self.sites[0]
    }

    /// The primary disk RSE of a site.
    pub fn disk_rse(&self, site: SiteId) -> RseId {
        self.site(site)
            .rses
            .iter()
            .copied()
            .find(|&r| self.rse(r).kind == RseKind::Disk)
            .expect("every site has a disk RSE")
    }

    /// Site hosting a given RSE.
    pub fn site_of_rse(&self, rse: RseId) -> SiteId {
        self.rse(rse).site
    }

    /// Look up a site by name (linear scan; used by tests and examples).
    pub fn site_by_name(&self, name: &str) -> Option<&Site> {
        self.sites.iter().find(|s| s.name == name)
    }

    /// Sites of a given tier.
    pub fn sites_of_tier(&self, tier: Tier) -> impl Iterator<Item = &Site> {
        self.sites.iter().filter(move |s| s.tier == tier)
    }
}

fn region_slug(region: &str) -> String {
    region
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect::<String>()
        .to_uppercase()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> GridTopology {
        GridTopology::generate(&RngFactory::new(42), &TopologyConfig::default())
    }

    #[test]
    fn generates_requested_site_counts() {
        let t = topo();
        assert_eq!(t.n_sites(), 111);
        assert_eq!(t.sites_of_tier(Tier::T0).count(), 1);
        assert_eq!(t.sites_of_tier(Tier::T1).count(), 12);
        assert_eq!(t.sites_of_tier(Tier::T2).count(), 70);
        assert_eq!(t.sites_of_tier(Tier::T3).count(), 28);
    }

    #[test]
    fn tier0_is_cern() {
        let t = topo();
        assert_eq!(t.tier0().name, "CERN-PROD");
        assert_eq!(t.tier0().tier, Tier::T0);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = topo();
        let b = topo();
        for (sa, sb) in a.sites().iter().zip(b.sites()) {
            assert_eq!(sa.name, sb.name);
            assert_eq!(sa.compute_slots, sb.compute_slots);
            assert_eq!(sa.transfer_slots, sb.transfer_slots);
            assert_eq!(sa.activity_weight, sb.activity_weight);
        }
    }

    #[test]
    fn different_seeds_change_capacities() {
        let a = topo();
        let b = GridTopology::generate(&RngFactory::new(43), &TopologyConfig::default());
        let diff = a
            .sites()
            .iter()
            .zip(b.sites())
            .filter(|(x, y)| x.compute_slots != y.compute_slots)
            .count();
        assert!(diff > 50, "only {diff} sites differ across seeds");
    }

    #[test]
    fn every_site_has_disk_rse_and_hubs_have_tape() {
        let t = topo();
        for s in t.sites() {
            let disk = t.disk_rse(s.id);
            assert_eq!(t.site_of_rse(disk), s.id);
            let has_tape = s.rses.iter().any(|&r| t.rse(r).kind == RseKind::Tape);
            match s.tier {
                Tier::T0 | Tier::T1 => assert!(has_tape, "{} lacks tape", s.name),
                _ => assert!(!has_tape, "{} unexpectedly has tape", s.name),
            }
        }
    }

    #[test]
    fn activity_weights_are_heavy_tailed() {
        let t = topo();
        let weights: Vec<f64> = t.sites().iter().map(|s| s.activity_weight).collect();
        let mean = dmsa_simcore::stats::mean(&weights).unwrap();
        let geo = dmsa_simcore::stats::geometric_mean(&weights).unwrap();
        assert!(
            mean / geo > 2.0,
            "weights not heavy-tailed: mean {mean}, geo {geo}"
        );
    }

    #[test]
    fn some_sites_serialize_transfers() {
        let t = topo();
        let single = t.sites().iter().filter(|s| s.transfer_slots == 1).count();
        assert!(
            single >= 5,
            "expected several single-stream sites, got {single}"
        );
        // But never the hubs.
        for s in t.sites_of_tier(Tier::T0).chain(t.sites_of_tier(Tier::T1)) {
            assert!(s.transfer_slots >= 8);
        }
    }

    #[test]
    fn site_by_name_round_trip() {
        let t = topo();
        let s = t.site_by_name("CERN-PROD").unwrap();
        assert_eq!(s.id, SiteId(0));
        assert!(t.site_by_name("NOPE").is_none());
    }
}
