//! The brokerage module: data-locality job placement.
//!
//! PanDA "in principle assigns computing jobs to the site that already
//! hosts the required input data" (paper §3.1). The paper then shows this
//! heuristic backfiring: hot sites accumulate long queues (Fig 5) while
//! remote placement — despite the extra transfer — often queues less
//! (Fig 6). The broker below reproduces both behaviours:
//!
//! * jobs go to the least-loaded site holding an input replica;
//! * when every data-holding site is overloaded, a configurable fraction of
//!   jobs escapes to the globally least-loaded site (remote staging);
//! * a small baseline fraction goes remote regardless (user-pinned sites,
//!   special queues), which seeds the remote population of Fig 6.

use dmsa_gridnet::{GridTopology, SiteId};
use dmsa_simcore::SimRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Brokerage policy knobs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BrokerConfig {
    /// Backlog (waiting + running jobs per compute slot) above which a
    /// data-holding site counts as overloaded.
    pub hot_backlog_threshold: f64,
    /// Probability of offloading to a remote site when all data-holding
    /// sites are hot.
    pub remote_when_hot_prob: f64,
    /// Baseline probability of ignoring data locality entirely.
    pub random_remote_prob: f64,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig {
            hot_backlog_threshold: 2.0,
            remote_when_hot_prob: 0.5,
            random_remote_prob: 0.03,
        }
    }
}

/// Read-only view of current per-site load, provided by the scenario loop.
#[derive(Clone, Copy, Debug)]
pub struct SiteLoadView<'a> {
    /// Jobs waiting per site.
    pub queued: &'a [u32],
    /// Jobs executing per site.
    pub running: &'a [u32],
}

impl SiteLoadView<'_> {
    /// Backlog score: pending work per compute slot.
    pub fn backlog(&self, site: SiteId, topology: &GridTopology) -> f64 {
        let i = site.index();
        let slots = topology.sites()[i].compute_slots.max(1);
        (self.queued[i] + self.running[i]) as f64 / slots as f64
    }
}

/// Placement decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Placement {
    /// Chosen computing site.
    pub site: SiteId,
    /// Whether the site already holds the input data (no remote staging).
    pub data_local: bool,
}

/// The brokerage module.
#[derive(Clone, Debug, Default)]
pub struct Broker {
    config: BrokerConfig,
}

impl Broker {
    /// Broker with the given policy.
    pub fn new(config: BrokerConfig) -> Self {
        Broker { config }
    }

    /// Current policy.
    pub fn config(&self) -> &BrokerConfig {
        &self.config
    }

    /// Choose a computing site for a job whose input replicas live at
    /// `replica_sites` (deduplicated, non-empty for well-formed catalogs).
    pub fn choose_site(
        &self,
        replica_sites: &[SiteId],
        load: SiteLoadView<'_>,
        topology: &GridTopology,
        rng: &mut SimRng,
    ) -> Placement {
        self.choose_site_guarded(replica_sites, load, topology, rng, |_| false)
    }

    /// [`Self::choose_site`] with a health veto: sites for which
    /// `unhealthy` returns true are hard-excluded from every candidate
    /// pool. When all data-holding sites are vetoed the job load-sheds to
    /// the coolest healthy site anywhere (paying the remote staging); if
    /// *every* non-T3 site is vetoed the veto itself is waived — the grid
    /// degrades rather than deadlocks.
    ///
    /// The RNG draw sequence is identical to [`Self::choose_site`] as
    /// long as no candidate is vetoed, which keeps zero-fault adaptive
    /// campaigns byte-identical to non-adaptive ones.
    pub fn choose_site_guarded(
        &self,
        replica_sites: &[SiteId],
        load: SiteLoadView<'_>,
        topology: &GridTopology,
        rng: &mut SimRng,
        mut unhealthy: impl FnMut(SiteId) -> bool,
    ) -> Placement {
        // Baseline locality violation (user pinning, special queues).
        if rng.random::<f64>() < self.config.random_remote_prob || replica_sites.is_empty() {
            let site = self.least_loaded_site(load, topology, None, &mut unhealthy);
            return Placement {
                site,
                data_local: replica_sites.contains(&site),
            };
        }

        // Data-locality principle: least-loaded *healthy* replica site.
        let healthy: Vec<SiteId> = replica_sites
            .iter()
            .copied()
            .filter(|&s| !unhealthy(s))
            .collect();
        if healthy.is_empty() {
            // Every data-holding site is excluded: shed the job to the
            // coolest healthy site elsewhere instead of queueing on a
            // breaker. (Draw-free branch — only reachable when a breaker
            // is open, i.e. never in zero-fault runs.)
            let site = self.least_loaded_site(load, topology, Some(replica_sites), &mut unhealthy);
            return Placement {
                site,
                data_local: replica_sites.contains(&site),
            };
        }
        let best_local = healthy
            .iter()
            .copied()
            .min_by(|&a, &b| {
                load.backlog(a, topology)
                    .total_cmp(&load.backlog(b, topology))
                    .then(a.cmp(&b))
            })
            .expect("non-empty healthy replica set");
        let local_backlog = load.backlog(best_local, topology);

        if local_backlog <= self.config.hot_backlog_threshold {
            return Placement {
                site: best_local,
                data_local: true,
            };
        }

        // All data sites hot: maybe escape to the coolest site anywhere.
        if rng.random::<f64>() < self.config.remote_when_hot_prob {
            let site = self.least_loaded_site(load, topology, Some(replica_sites), &mut unhealthy);
            Placement {
                site,
                data_local: replica_sites.contains(&site),
            }
        } else {
            // Stay local and eat the queue — the Fig 5 pathology.
            Placement {
                site: best_local,
                data_local: true,
            }
        }
    }

    /// Globally least-loaded site, optionally excluding a set; excludes
    /// Tier-3 sites (they take no brokered analysis load) and sites vetoed
    /// by `unhealthy`. If the exclusions empty the candidate pool the
    /// waiver chain relaxes them in order — first the replica-set
    /// exclusion (every non-T3 site already holds the data, common on
    /// small grids), then the health veto (the whole grid is sick):
    /// there must always be *somewhere* to run.
    fn least_loaded_site(
        &self,
        load: SiteLoadView<'_>,
        topology: &GridTopology,
        exclude: Option<&[SiteId]>,
        unhealthy: &mut impl FnMut(SiteId) -> bool,
    ) -> SiteId {
        let mut pick = |ignore_exclusion: bool, ignore_health: bool| {
            topology
                .sites()
                .iter()
                .filter(|s| s.tier != dmsa_gridnet::Tier::T3)
                .filter(|s| ignore_exclusion || exclude.is_none_or(|e| !e.contains(&s.id)))
                .map(|s| s.id)
                .filter(|&s| ignore_health || !unhealthy(s))
                .min_by(|&a, &b| {
                    load.backlog(a, topology)
                        .total_cmp(&load.backlog(b, topology))
                        .then(a.cmp(&b))
                })
        };
        pick(false, false)
            .or_else(|| pick(true, false))
            .or_else(|| pick(true, true))
            .expect("topology has at least one non-T3 site")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmsa_gridnet::TopologyConfig;
    use dmsa_simcore::RngFactory;

    fn topo() -> GridTopology {
        GridTopology::generate(&RngFactory::new(5), &TopologyConfig::small())
    }

    fn zero_load(n: usize) -> (Vec<u32>, Vec<u32>) {
        (vec![0; n], vec![0; n])
    }

    #[test]
    fn cold_replica_site_wins() {
        let topo = topo();
        let (q, r) = zero_load(topo.n_sites());
        let load = SiteLoadView {
            queued: &q,
            running: &r,
        };
        let broker = Broker::new(BrokerConfig {
            random_remote_prob: 0.0,
            ..Default::default()
        });
        let mut rng = RngFactory::new(1).stream("t");
        let p = broker.choose_site(&[SiteId(4)], load, &topo, &mut rng);
        assert_eq!(p.site, SiteId(4));
        assert!(p.data_local);
    }

    #[test]
    fn least_loaded_replica_site_preferred() {
        let topo = topo();
        let (mut q, r) = zero_load(topo.n_sites());
        q[4] = 10_000; // site 4 slammed
        let load = SiteLoadView {
            queued: &q,
            running: &r,
        };
        let broker = Broker::new(BrokerConfig {
            random_remote_prob: 0.0,
            ..Default::default()
        });
        let mut rng = RngFactory::new(1).stream("t");
        let p = broker.choose_site(&[SiteId(4), SiteId(6)], load, &topo, &mut rng);
        assert_eq!(p.site, SiteId(6));
        assert!(p.data_local);
    }

    #[test]
    fn hot_data_sites_trigger_remote_escape() {
        let topo = topo();
        let n = topo.n_sites();
        let (mut q, r) = zero_load(n);
        q[4] = 100_000;
        let load = SiteLoadView {
            queued: &q,
            running: &r,
        };
        let broker = Broker::new(BrokerConfig {
            hot_backlog_threshold: 1.0,
            remote_when_hot_prob: 1.0, // always escape
            random_remote_prob: 0.0,
        });
        let mut rng = RngFactory::new(1).stream("t");
        let p = broker.choose_site(&[SiteId(4)], load, &topo, &mut rng);
        assert_ne!(p.site, SiteId(4));
        assert!(!p.data_local);
    }

    #[test]
    fn hot_data_sites_can_still_queue_locally() {
        let topo = topo();
        let (mut q, r) = zero_load(topo.n_sites());
        q[4] = 100_000;
        let load = SiteLoadView {
            queued: &q,
            running: &r,
        };
        let broker = Broker::new(BrokerConfig {
            hot_backlog_threshold: 1.0,
            remote_when_hot_prob: 0.0, // never escape: Fig 5 pathology
            random_remote_prob: 0.0,
        });
        let mut rng = RngFactory::new(1).stream("t");
        let p = broker.choose_site(&[SiteId(4)], load, &topo, &mut rng);
        assert_eq!(p.site, SiteId(4));
        assert!(p.data_local);
    }

    #[test]
    fn no_replicas_falls_back_to_least_loaded() {
        let topo = topo();
        let (q, r) = zero_load(topo.n_sites());
        let load = SiteLoadView {
            queued: &q,
            running: &r,
        };
        let broker = Broker::new(BrokerConfig::default());
        let mut rng = RngFactory::new(1).stream("t");
        let p = broker.choose_site(&[], load, &topo, &mut rng);
        assert!(!p.data_local);
        assert_ne!(topo.site(p.site).tier, dmsa_gridnet::Tier::T3);
    }

    #[test]
    fn tier3_sites_never_receive_escapes() {
        let topo = topo();
        let n = topo.n_sites();
        // Make every non-T3 site moderately loaded, every T3 site empty:
        // the escape must still avoid T3.
        let mut q = vec![0u32; n];
        for s in topo.sites() {
            if s.tier != dmsa_gridnet::Tier::T3 {
                q[s.id.index()] = s.compute_slots; // backlog 1.0
            }
        }
        let r = vec![0u32; n];
        let load = SiteLoadView {
            queued: &q,
            running: &r,
        };
        let broker = Broker::new(BrokerConfig {
            hot_backlog_threshold: 0.5,
            remote_when_hot_prob: 1.0,
            random_remote_prob: 0.0,
        });
        let mut rng = RngFactory::new(1).stream("t");
        for _ in 0..32 {
            let p = broker.choose_site(&[SiteId(1)], load, &topo, &mut rng);
            assert_ne!(topo.site(p.site).tier, dmsa_gridnet::Tier::T3);
        }
    }

    #[test]
    fn guarded_with_no_vetoes_matches_unguarded_exactly() {
        let topo = topo();
        let (mut q, r) = zero_load(topo.n_sites());
        q[4] = 100_000; // make the hot/escape paths reachable
        let load = SiteLoadView {
            queued: &q,
            running: &r,
        };
        let broker = Broker::new(BrokerConfig {
            random_remote_prob: 0.1,
            ..Default::default()
        });
        let mut rng_a = RngFactory::new(9).stream("t");
        let mut rng_b = RngFactory::new(9).stream("t");
        for i in 0..200u32 {
            let replicas = [SiteId(i % 8), SiteId(4)];
            let a = broker.choose_site(&replicas, load, &topo, &mut rng_a);
            let b = broker.choose_site_guarded(&replicas, load, &topo, &mut rng_b, |_| false);
            assert_eq!(a, b, "iteration {i}");
        }
    }

    #[test]
    fn guarded_excludes_vetoed_replica_site() {
        let topo = topo();
        let (q, r) = zero_load(topo.n_sites());
        let load = SiteLoadView {
            queued: &q,
            running: &r,
        };
        let broker = Broker::new(BrokerConfig {
            random_remote_prob: 0.0,
            ..Default::default()
        });
        let mut rng = RngFactory::new(1).stream("t");
        // Site 4 vetoed: the other replica site must win even at equal load.
        let p = broker.choose_site_guarded(&[SiteId(4), SiteId(6)], load, &topo, &mut rng, |s| {
            s == SiteId(4)
        });
        assert_eq!(p.site, SiteId(6));
        assert!(p.data_local);
    }

    #[test]
    fn all_replica_sites_vetoed_sheds_load_elsewhere() {
        let topo = topo();
        let (q, r) = zero_load(topo.n_sites());
        let load = SiteLoadView {
            queued: &q,
            running: &r,
        };
        let broker = Broker::new(BrokerConfig {
            random_remote_prob: 0.0,
            ..Default::default()
        });
        let mut rng = RngFactory::new(1).stream("t");
        let replicas = [SiteId(4), SiteId(6)];
        let p =
            broker.choose_site_guarded(&replicas, load, &topo, &mut rng, |s| replicas.contains(&s));
        assert!(!replicas.contains(&p.site), "must shed off the sick sites");
        assert!(!p.data_local);
        assert_ne!(topo.site(p.site).tier, dmsa_gridnet::Tier::T3);
    }

    #[test]
    fn fully_vetoed_grid_waives_the_veto_instead_of_panicking() {
        let topo = topo();
        let (q, r) = zero_load(topo.n_sites());
        let load = SiteLoadView {
            queued: &q,
            running: &r,
        };
        let broker = Broker::new(BrokerConfig {
            random_remote_prob: 0.0,
            ..Default::default()
        });
        let mut rng = RngFactory::new(1).stream("t");
        // Everything unhealthy: the waiver chain must still place the job.
        let p = broker.choose_site_guarded(&[SiteId(4)], load, &topo, &mut rng, |_| true);
        assert_ne!(topo.site(p.site).tier, dmsa_gridnet::Tier::T3);
    }

    #[test]
    fn random_remote_prob_diversifies_placement() {
        let topo = topo();
        let (q, r) = zero_load(topo.n_sites());
        let load = SiteLoadView {
            queued: &q,
            running: &r,
        };
        let broker = Broker::new(BrokerConfig {
            random_remote_prob: 0.5,
            ..Default::default()
        });
        let mut rng = RngFactory::new(1).stream("t");
        let sites: std::collections::HashSet<SiteId> = (0..200)
            .map(|_| broker.choose_site(&[SiteId(4)], load, &topo, &mut rng).site)
            .collect();
        assert!(sites.len() >= 2, "placement never diversified");
    }
}
