//! Redundant-transfer attribution: retry-induced vs reaper-induced.
//!
//! Fig 12 / Table 3 treat every duplicate delivery of the same bytes to
//! the same destination as one undifferentiated "redundant transfer".
//! With the failure-aware transfer path the simulator now produces two
//! mechanistically distinct kinds of duplicate:
//!
//! * **retry-induced** — a transfer request failed mid-flight and Rucio
//!   retried it; the failed attempts occupied stream slots and show up as
//!   extra records (`succeeded == false`, or a survivor with
//!   `attempt > 1`);
//! * **reaper-induced** — every attempt succeeded, but the replica was
//!   deleted between deliveries (cache reaping) or a second job staged
//!   the same file again, so the same bytes crossed the link twice.
//!
//! The distinction matters operationally: retry-induced redundancy calls
//! for link hardening or source failover, reaper-induced redundancy for
//! cache-lifetime / pin-policy tuning. This module classifies the groups
//! found by [`dmsa_core::infer::redundant_groups`] and, for the
//! retry-induced ones, attributes the staging delay the retries added
//! (success start minus first-attempt start).

use dmsa_core::infer::{redundant_groups, RedundantGroup};
use dmsa_metastore::MetaStore;
use dmsa_simcore::SimDuration;
use serde::{Deserialize, Serialize};

/// Why a duplicate-delivery group exists.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum DuplicateClass {
    /// At least one member is a failed or retry attempt: the duplicates
    /// come from the transfer engine re-driving a failed request.
    RetryInduced,
    /// All members are successful first attempts: the duplicates come
    /// from re-delivery after the replica was reaped (or a concurrent
    /// second request), not from transfer failures.
    ReaperInduced,
}

/// Classify one redundant group from its members' attempt metadata.
pub fn classify_group(store: &MetaStore, group: &RedundantGroup) -> DuplicateClass {
    let retry = group.transfers.iter().any(|&i| {
        let t = &store.transfers[i as usize];
        t.is_retry() || !t.succeeded
    });
    if retry {
        DuplicateClass::RetryInduced
    } else {
        DuplicateClass::ReaperInduced
    }
}

/// Aggregate counts for one duplicate class.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct ClassStats {
    /// Duplicate groups in this class.
    pub n_groups: usize,
    /// Redundant transfers: every group member beyond the first.
    pub n_redundant: usize,
    /// Bytes those redundant transfers re-moved.
    pub redundant_bytes: u64,
}

impl ClassStats {
    fn absorb(&mut self, store: &MetaStore, group: &RedundantGroup) {
        self.n_groups += 1;
        // The first delivery was necessary; everything after re-moves the
        // same bytes.
        for &i in &group.transfers[1..] {
            self.n_redundant += 1;
            self.redundant_bytes += store.transfers[i as usize].file_size;
        }
    }
}

/// Redundant-transfer attribution over a whole store.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RedundancyBreakdown {
    /// Clustering window the groups were built with.
    pub window: SimDuration,
    /// Groups containing failed/retry attempts.
    pub retry_induced: ClassStats,
    /// Groups of purely successful first attempts.
    pub reaper_induced: ClassStats,
    /// Per-group staging delay added by retries: for each retry-induced
    /// group that eventually delivered, seconds from the first attempt's
    /// start to the delivering attempt's start.
    pub retry_delay_secs: Vec<f64>,
}

impl RedundancyBreakdown {
    /// Mean retry-added staging delay (`None` if no retry group
    /// delivered).
    pub fn mean_retry_delay_secs(&self) -> Option<f64> {
        dmsa_simcore::stats::mean(&self.retry_delay_secs)
    }

    /// Share of duplicate groups that are retry-induced (`None` when
    /// there are no groups at all).
    pub fn retry_share(&self) -> Option<f64> {
        let total = self.retry_induced.n_groups + self.reaper_induced.n_groups;
        (total > 0).then(|| self.retry_induced.n_groups as f64 / total as f64)
    }
}

/// Build the attribution by classifying every redundant group found with
/// the recorded destinations (callers wanting inferred destinations for
/// `UNKNOWN` endpoints can pre-resolve and use [`classify_group`]
/// directly).
pub fn redundancy_breakdown(store: &MetaStore, window: SimDuration) -> RedundancyBreakdown {
    let groups = redundant_groups(store, window, |i| {
        store.transfers[i as usize].destination_site
    });
    let mut out = RedundancyBreakdown {
        window,
        retry_induced: ClassStats::default(),
        reaper_induced: ClassStats::default(),
        retry_delay_secs: Vec::new(),
    };
    for g in &groups {
        match classify_group(store, g) {
            DuplicateClass::RetryInduced => {
                out.retry_induced.absorb(store, g);
                // Delay = delivering attempt's start − first attempt's
                // start. Members arrive start-sorted from the grouper.
                let first = store.transfers[g.transfers[0] as usize].starttime;
                if let Some(&winner) = g
                    .transfers
                    .iter()
                    .find(|&&i| store.transfers[i as usize].succeeded)
                {
                    let delay = store.transfers[winner as usize].starttime - first;
                    out.retry_delay_secs
                        .push(delay.clamp_non_negative().as_secs_f64());
                }
            }
            DuplicateClass::ReaperInduced => out.reaper_induced.absorb(store, g),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmsa_metastore::{Sym, SymbolTable, TransferRecord};
    use dmsa_rucio_sim::Activity;
    use dmsa_simcore::SimTime;

    fn transfer(
        lfn: u64,
        dest: Sym,
        start_s: i64,
        attempt: u32,
        succeeded: bool,
    ) -> TransferRecord {
        TransferRecord {
            transfer_id: 0,
            lfn: Sym(lfn as u32),
            dataset: SymbolTable::UNKNOWN,
            proddblock: SymbolTable::UNKNOWN,
            scope: SymbolTable::UNKNOWN,
            file_size: 1_000,
            starttime: SimTime::from_secs(start_s),
            endtime: SimTime::from_secs(start_s + 10),
            source_site: Sym(90),
            destination_site: dest,
            activity: Activity::AnalysisDownload,
            jeditaskid: None,
            is_download: true,
            is_upload: false,
            attempt,
            succeeded,
            gt_pandaid: None,
            gt_source_site: Sym(90),
            gt_destination_site: dest,
            gt_file_size: 1_000,
        }
    }

    #[test]
    fn retry_and_reaper_groups_are_attributed_separately() {
        let mut store = MetaStore::new();
        let dest = store.register_site("SITE-A");
        // Retry group: two failed attempts then the delivery, 60 s apart.
        store.transfers.push(transfer(1, dest, 0, 1, false));
        store.transfers.push(transfer(1, dest, 60, 2, false));
        store.transfers.push(transfer(1, dest, 120, 3, true));
        // Reaper group: two clean first-attempt deliveries of file 2.
        store.transfers.push(transfer(2, dest, 0, 1, true));
        store.transfers.push(transfer(2, dest, 200, 1, true));
        // Singleton: no group at all.
        store.transfers.push(transfer(3, dest, 0, 1, true));

        let b = redundancy_breakdown(&store, SimDuration::from_secs(1_000));
        assert_eq!(b.retry_induced.n_groups, 1);
        assert_eq!(b.retry_induced.n_redundant, 2);
        assert_eq!(b.retry_induced.redundant_bytes, 2_000);
        assert_eq!(b.reaper_induced.n_groups, 1);
        assert_eq!(b.reaper_induced.n_redundant, 1);
        assert_eq!(b.reaper_induced.redundant_bytes, 1_000);
        assert_eq!(b.retry_delay_secs, vec![120.0]);
        assert_eq!(b.mean_retry_delay_secs(), Some(120.0));
        assert_eq!(b.retry_share(), Some(0.5));
    }

    #[test]
    fn surviving_retry_ordinal_marks_group_even_without_failed_records() {
        // Corruption may drop failed-attempt rows; the delivered record's
        // attempt > 1 still gives the group away.
        let mut store = MetaStore::new();
        let dest = store.register_site("SITE-A");
        store.transfers.push(transfer(1, dest, 0, 1, true));
        store.transfers.push(transfer(1, dest, 60, 3, true));
        let b = redundancy_breakdown(&store, SimDuration::from_secs(1_000));
        assert_eq!(b.retry_induced.n_groups, 1);
        assert_eq!(b.reaper_induced.n_groups, 0);
    }

    #[test]
    fn exhausted_groups_contribute_no_delay_sample() {
        // All attempts failed: redundancy counted, but there is no
        // delivery to attribute a delay to.
        let mut store = MetaStore::new();
        let dest = store.register_site("SITE-A");
        store.transfers.push(transfer(1, dest, 0, 1, false));
        store.transfers.push(transfer(1, dest, 60, 2, false));
        let b = redundancy_breakdown(&store, SimDuration::from_secs(1_000));
        assert_eq!(b.retry_induced.n_groups, 1);
        assert!(b.retry_delay_secs.is_empty());
        assert_eq!(b.mean_retry_delay_secs(), None);
    }

    #[test]
    fn empty_store_yields_empty_breakdown() {
        let store = MetaStore::new();
        let b = redundancy_breakdown(&store, SimDuration::from_secs(100));
        assert_eq!(b.retry_share(), None);
        assert_eq!(b.retry_induced.n_groups + b.reaper_induced.n_groups, 0);
    }
}
