//! Seeded outage schedules and per-attempt transfer failure probabilities.
//!
//! The paper's anomalies are *caused* by transfer failures: Fig 10's retry
//! storms and dead storage movers, §5.2's redundant transfers (the same
//! bytes delivered repeatedly), §5.3's staging delays (queued→start gaps
//! far beyond the link's nominal duration). This module supplies the causal
//! layer: per-site and per-directed-link **outage windows** plus a base
//! **per-attempt failure probability**, all deterministic pure functions of
//! `(master seed, entity, time bucket)` — the same stateless discipline as
//! [`crate::BandwidthModel`], so any component may query the schedule at any
//! `SimTime` without perturbing a single RNG stream. With every knob at
//! zero the model is inert: nothing downstream draws, branches, or shifts,
//! and a campaign is byte-identical to one built without it.

use crate::site::SiteId;
use dmsa_simcore::{RngFactory, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Width of the piecewise-constant outage windows. Real downtime
/// declarations (GOCDB) are scheduled in hours, not seconds.
pub const OUTAGE_BUCKET: SimDuration = SimDuration::from_secs(3_600);

/// Failure/outage knobs. All probabilities default to zero: the fault
/// layer is strictly additive and off unless a scenario turns it on.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Base probability that any single transfer attempt fails (mover
    /// crash, checksum mismatch, auth token expiry) outside outages.
    pub p_attempt_failure: f64,
    /// Fraction of hour-buckets during which a given site's storage
    /// frontend is in outage (dead storage movers).
    pub site_outage_fraction: f64,
    /// Fraction of hour-buckets during which a given directed link is in
    /// outage (network path down, FTS channel drained).
    pub link_outage_fraction: f64,
    /// Attempt failure probability while an endpoint or the link is in
    /// outage. Not 1.0: a transfer that *started* just before the window
    /// closes occasionally squeaks through.
    pub p_outage_failure: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

impl FaultConfig {
    /// The inert configuration: no outages, no attempt failures.
    pub fn none() -> Self {
        FaultConfig {
            p_attempt_failure: 0.0,
            site_outage_fraction: 0.0,
            link_outage_fraction: 0.0,
            p_outage_failure: 0.95,
        }
    }

    /// A degraded-grid preset for tests and the outage-sweep ablation:
    /// noticeable attempt failures plus rare site/link outage windows.
    pub fn degraded() -> Self {
        FaultConfig {
            p_attempt_failure: 0.08,
            site_outage_fraction: 0.01,
            link_outage_fraction: 0.015,
            p_outage_failure: 0.95,
        }
    }

    /// Does any knob make faults possible?
    pub fn enabled(&self) -> bool {
        self.p_attempt_failure > 0.0
            || self.site_outage_fraction > 0.0
            || self.link_outage_fraction > 0.0
    }
}

/// Deterministic fault oracle for a fixed topology.
///
/// Construction consumes **no** RNG stream draws (everything is hashed from
/// the master seed), so adding a `FaultModel` to an existing scenario never
/// re-randomizes other components.
#[derive(Clone, Debug)]
pub struct FaultModel {
    seed: u64,
    config: FaultConfig,
}

/// Salts keeping the site/link/attempt hash families disjoint.
const SITE_SALT: u64 = 0xFA_517E;
const LINK_SALT: u64 = 0xFA_11ED;

impl FaultModel {
    /// Build the oracle. The `rngs` factory supplies only the master seed.
    pub fn new(rngs: &RngFactory, config: FaultConfig) -> Self {
        FaultModel {
            seed: rngs.master_seed(),
            config,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Can this model ever fail an attempt? Callers gate every draw on
    /// this so a disabled model leaves RNG streams untouched.
    pub fn enabled(&self) -> bool {
        self.config.enabled()
    }

    fn bucket(t: SimTime) -> u64 {
        t.as_millis().div_euclid(OUTAGE_BUCKET.as_millis()) as u64
    }

    /// Is `site`'s storage frontend in a scheduled outage at `t`?
    pub fn site_down(&self, site: SiteId, t: SimTime) -> bool {
        if self.config.site_outage_fraction <= 0.0 {
            return false;
        }
        let h = mix(
            self.seed,
            SITE_SALT ^ ((site.0 as u64) << 20),
            Self::bucket(t),
        );
        uniform(h) < self.config.site_outage_fraction
    }

    /// Is the directed link `src → dst` in outage at `t`? (Endpoint site
    /// outages are queried separately; see [`Self::path_down`].)
    pub fn link_down(&self, src: SiteId, dst: SiteId, t: SimTime) -> bool {
        if self.config.link_outage_fraction <= 0.0 || src == dst {
            // Local moves never traverse a WAN link.
            return false;
        }
        let link = ((src.0 as u64) << 32) | dst.0 as u64;
        let h = mix(self.seed, LINK_SALT ^ link, Self::bucket(t));
        uniform(h) < self.config.link_outage_fraction
    }

    /// Is the whole transfer path degraded at `t` — either endpoint's
    /// frontend down, or (for remote transfers) the link down?
    pub fn path_down(&self, src: SiteId, dst: SiteId, t: SimTime) -> bool {
        self.site_down(src, t)
            || (src != dst && self.site_down(dst, t))
            || self.link_down(src, dst, t)
    }

    /// Probability that a single attempt starting at `t` on `src → dst`
    /// fails.
    pub fn attempt_failure_prob(&self, src: SiteId, dst: SiteId, t: SimTime) -> f64 {
        if self.path_down(src, dst, t) {
            self.config.p_outage_failure
        } else {
            self.config.p_attempt_failure
        }
    }
}

/// SplitMix64-style integer mixing (same family as the bandwidth model's,
/// differently salted).
fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut x = seed ^ a.rotate_left(23) ^ b.wrapping_mul(0x9E3779B97F4A7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58476D1CE4E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Map a hash to a uniform in `(0, 1)`.
fn uniform(h: u64) -> f64 {
    (((h >> 11) as f64) + 0.5) / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(config: FaultConfig) -> FaultModel {
        FaultModel::new(&RngFactory::new(42), config)
    }

    #[test]
    fn inert_config_never_fails_anything() {
        let m = model(FaultConfig::none());
        assert!(!m.enabled());
        for h in 0..200 {
            let t = SimTime::from_hours(h);
            assert!(!m.site_down(SiteId(3), t));
            assert!(!m.link_down(SiteId(1), SiteId(2), t));
            assert_eq!(m.attempt_failure_prob(SiteId(1), SiteId(2), t), 0.0);
        }
    }

    #[test]
    fn outage_fractions_are_roughly_respected() {
        let m = model(FaultConfig {
            site_outage_fraction: 0.10,
            link_outage_fraction: 0.05,
            ..FaultConfig::none()
        });
        let n = 20_000;
        let site_down = (0..n)
            .filter(|&h| m.site_down(SiteId(7), SimTime::from_hours(h)))
            .count() as f64
            / n as f64;
        let link_down = (0..n)
            .filter(|&h| m.link_down(SiteId(1), SiteId(9), SimTime::from_hours(h)))
            .count() as f64
            / n as f64;
        assert!(
            (site_down - 0.10).abs() < 0.02,
            "site outage rate {site_down}"
        );
        assert!(
            (link_down - 0.05).abs() < 0.02,
            "link outage rate {link_down}"
        );
    }

    #[test]
    fn schedules_are_deterministic_and_per_entity() {
        let m = model(FaultConfig::degraded());
        let m2 = model(FaultConfig::degraded());
        let mut differ = false;
        for h in 0..2_000 {
            let t = SimTime::from_hours(h);
            assert_eq!(m.site_down(SiteId(4), t), m2.site_down(SiteId(4), t));
            if m.site_down(SiteId(4), t) != m.site_down(SiteId(5), t) {
                differ = true;
            }
        }
        assert!(differ, "distinct sites must have distinct schedules");
    }

    #[test]
    fn outage_windows_are_bucket_constant() {
        let m = model(FaultConfig {
            site_outage_fraction: 0.2,
            ..FaultConfig::none()
        });
        // Find a down bucket, then verify constancy across the hour.
        let t = (0..5_000)
            .map(SimTime::from_hours)
            .find(|&t| m.site_down(SiteId(2), t))
            .expect("a down hour exists at 20 %");
        for offset in [0, 1, 1_800, 3_599] {
            assert!(m.site_down(SiteId(2), t + SimDuration::from_secs(offset)));
        }
    }

    #[test]
    fn outages_elevate_attempt_failure_probability() {
        let m = model(FaultConfig {
            p_attempt_failure: 0.02,
            site_outage_fraction: 0.1,
            ..FaultConfig::degraded()
        });
        let (src, dst) = (SiteId(0), SiteId(6));
        let down = (0..5_000)
            .map(SimTime::from_hours)
            .find(|&t| m.path_down(src, dst, t))
            .expect("an outage exists");
        let up = (0..5_000)
            .map(SimTime::from_hours)
            .find(|&t| !m.path_down(src, dst, t))
            .expect("an up hour exists");
        assert_eq!(m.attempt_failure_prob(src, dst, down), 0.95);
        assert_eq!(m.attempt_failure_prob(src, dst, up), 0.02);
    }

    #[test]
    fn local_paths_ignore_link_outages() {
        let m = model(FaultConfig {
            link_outage_fraction: 1.0,
            ..FaultConfig::none()
        });
        for h in 0..50 {
            assert!(!m.link_down(SiteId(3), SiteId(3), SimTime::from_hours(h)));
        }
        // But remote paths are always down at fraction 1.
        assert!(m.link_down(SiteId(3), SiteId(4), SimTime::EPOCH));
    }

    #[test]
    fn directed_links_fail_independently() {
        let m = model(FaultConfig {
            link_outage_fraction: 0.3,
            ..FaultConfig::none()
        });
        let differ = (0..2_000)
            .map(SimTime::from_hours)
            .any(|t| m.link_down(SiteId(1), SiteId(2), t) != m.link_down(SiteId(2), SiteId(1), t));
        assert!(differ, "direction must matter, as for bandwidth");
    }
}
