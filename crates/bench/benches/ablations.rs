//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **simulation throughput** — events/second of the co-simulation loop
//!   at several scales (the substrate must stay fast enough to reach the
//!   paper's 6.8 M-transfer volumes);
//! * **corruption cost** — the metadata-quality model applied to a store;
//! * **index build vs match** — how much of the prepared engine's time is
//!   index construction (callers that sweep methods or windows reuse one
//!   [`PreparedStore`]);
//! * **site-inference and redundancy detection** — the RM2 extras;
//! * **failure injection** — simulation cost and retry-traffic volume as
//!   the per-attempt failure probability sweeps up from zero (the
//!   zero-knob point doubles as a regression bench for the fault-free
//!   fast path);
//! * **adaptive exclusion** — the closed health loop's overhead on a
//!   degraded grid, swept over breaker sensitivity (off, the calibrated
//!   default, and a hair-trigger breaker that trips constantly).
//!
//! Run with `cargo bench -p dmsa-bench --bench ablations`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmsa_core::infer::{infer_sites, redundant_groups};
use dmsa_core::matcher::{job_universe, Matcher};
use dmsa_core::{IndexedMatcher, MatchMethod, PreparedStore};
use dmsa_gridnet::HealthConfig;
use dmsa_metastore::CorruptionModel;
use dmsa_scenario::ScenarioConfig;
use dmsa_simcore::{RngFactory, SimDuration};
use std::hint::black_box;

fn simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulation");
    g.sample_size(10);
    for scale in [0.005, 0.01, 0.02] {
        g.bench_with_input(BenchmarkId::from_parameter(scale), &scale, |b, &s| {
            b.iter(|| black_box(dmsa_scenario::run(&ScenarioConfig::paper_8day(s))))
        });
    }
    g.finish();
}

fn corruption(c: &mut Criterion) {
    let clean = dmsa_scenario::run(&ScenarioConfig {
        corruption: CorruptionModel::none(),
        ..ScenarioConfig::paper_8day(0.02)
    });
    let mut g = c.benchmark_group("corruption");
    g.sample_size(10);
    for k in [0.5, 1.0, 2.0] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let model = CorruptionModel::default().scaled(k);
            b.iter(|| {
                let mut store = clean.store.clone();
                model.apply(&mut store, &RngFactory::new(7));
                black_box(store.transfers.len())
            })
        });
    }
    g.finish();
}

fn index_vs_match(c: &mut Criterion) {
    let camp = dmsa_scenario::run(&ScenarioConfig::paper_8day(0.02));
    let mut g = c.benchmark_group("index");
    g.sample_size(10);
    g.bench_function("build", |b| {
        b.iter(|| black_box(PreparedStore::build(&camp.store)))
    });
    g.bench_function("match_only", |b| {
        let index = PreparedStore::build(&camp.store);
        let universe = job_universe(&camp.store, camp.window);
        b.iter(|| {
            let n = universe
                .iter()
                .filter_map(|&j| index.match_one(j, MatchMethod::Rm2))
                .count();
            black_box(n)
        })
    });
    g.finish();
}

fn rm2_extras(c: &mut Criterion) {
    let camp = dmsa_scenario::run(&ScenarioConfig::paper_8day(0.02));
    let rm2 = IndexedMatcher.match_jobs(&camp.store, camp.window, MatchMethod::Rm2);
    let mut g = c.benchmark_group("rm2_extras");
    g.sample_size(10);
    g.bench_function("site_inference", |b| {
        b.iter(|| black_box(infer_sites(&camp.store, &rm2, SimDuration::from_days(2))))
    });
    g.bench_function("redundancy_detection", |b| {
        b.iter(|| {
            black_box(redundant_groups(
                &camp.store,
                SimDuration::from_days(1),
                |i| camp.store.transfers[i as usize].destination_site,
            ))
        })
    });
    g.finish();
}

fn outage_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("outage_sweep");
    g.sample_size(10);
    // p = 0.0 measures the fault-free fast path (no extra RNG draws, no
    // retry loop iterations); higher p buys retry traffic with sim time.
    for p_fail in [0.0, 0.05, 0.15] {
        g.bench_with_input(BenchmarkId::from_parameter(p_fail), &p_fail, |b, &p| {
            let mut config = ScenarioConfig::paper_8day(0.01);
            config.faults.p_attempt_failure = p;
            config.faults.site_outage_fraction = p / 5.0;
            b.iter(|| {
                let camp = dmsa_scenario::run(&config);
                let retries = camp
                    .store
                    .transfers
                    .iter()
                    .filter(|t| t.is_retry() || !t.succeeded)
                    .count();
                black_box((camp.store.transfers.len(), retries))
            })
        });
    }
    g.finish();
}

fn adaptive_exclusion(c: &mut Criterion) {
    let mut g = c.benchmark_group("adaptive_exclusion");
    g.sample_size(10);
    // The off point is the PR 3 regression bench: breakers disabled must
    // cost nothing over the plain faulty path. "default" is the
    // calibrated HealthConfig::adaptive() thresholds; "hair-trigger"
    // maximizes breaker churn (trips, probation rounds, waiver chains)
    // to bound the monitor's worst-case overhead.
    let variants: [(&str, Option<(f64, u32)>); 3] = [
        ("off", None),
        ("default", Some((0.7, 4))),
        ("hair-trigger", Some((0.05, 1))),
    ];
    for (label, breaker) in variants {
        g.bench_with_input(BenchmarkId::from_parameter(label), &breaker, |b, &knobs| {
            let mut config = ScenarioConfig::small_faulty();
            if let Some((rate, consecutive)) = knobs {
                config.health = HealthConfig::adaptive();
                config.health.failure_rate_threshold = rate;
                config.health.consecutive_failures = consecutive;
            }
            b.iter(|| {
                let camp = dmsa_scenario::run(&config);
                let trips = camp.health.as_ref().map_or(0, |h| h.counters.trips);
                black_box((camp.path_stats.exhausted, trips))
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    simulation,
    corruption,
    index_vs_match,
    rm2_extras,
    outage_sweep,
    adaptive_exclusion
);
criterion_main!(benches);
