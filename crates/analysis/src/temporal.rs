//! Temporal imbalance of transfer activity (§3.2).
//!
//! The paper observes that the WLCG moves data "with significant spatial
//! and temporal imbalance". The spatial half is Fig 3 ([`crate::matrix`]);
//! this module covers the temporal half: bucketed volume series, their
//! peak-to-trough ratios, and a per-site activity concentration measure
//! (Gini coefficient) that quantifies the "hot spot" claim.

use dmsa_metastore::{MetaStore, Sym};
use dmsa_simcore::interval::Interval;
use dmsa_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One bucket of the volume series.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct VolumePoint {
    /// Bucket start.
    pub t: SimTime,
    /// Bytes whose transfers *started* in this bucket.
    pub bytes: u64,
    /// Transfer count.
    pub count: usize,
}

/// Transfer volume per time bucket over `window`. Buckets with no traffic
/// are included (zero), so peak/trough ratios are meaningful.
pub fn volume_series(store: &MetaStore, window: Interval, bucket: SimDuration) -> Vec<VolumePoint> {
    let bucket_ms = bucket.as_millis().max(1);
    let first = window.start.as_millis().div_euclid(bucket_ms);
    let last = (window.end.as_millis() - 1).div_euclid(bucket_ms);
    let mut series: Vec<VolumePoint> = (first..=last)
        .map(|b| VolumePoint {
            t: SimTime::from_millis(b * bucket_ms),
            bytes: 0,
            count: 0,
        })
        .collect();
    for t in store.transfers_in(window) {
        let b = (t.starttime.as_millis().div_euclid(bucket_ms) - first) as usize;
        if let Some(p) = series.get_mut(b) {
            p.bytes += t.file_size;
            p.count += 1;
        }
    }
    series
}

/// Peak-to-trough ratio of a volume series over its *nonzero* buckets
/// (`None` when fewer than two nonzero buckets exist).
pub fn peak_to_trough(series: &[VolumePoint]) -> Option<f64> {
    let nonzero: Vec<u64> = series.iter().map(|p| p.bytes).filter(|&b| b > 0).collect();
    if nonzero.len() < 2 {
        return None;
    }
    let max = *nonzero.iter().max().expect("non-empty");
    let min = *nonzero.iter().min().expect("non-empty");
    Some(max as f64 / min as f64)
}

/// Gini coefficient of per-site transfer volume (0 = perfectly even,
/// → 1 = one site carries everything). Uses the recorded destination; an
/// unknown endpoint aggregates like Fig 3's 102nd site.
pub fn site_volume_gini(store: &MetaStore, window: Interval) -> f64 {
    let mut by_site: HashMap<Sym, u64> = HashMap::new();
    for t in store.transfers_in(window) {
        *by_site.entry(t.destination_site).or_insert(0) += t.file_size;
    }
    gini(&by_site.values().map(|&v| v as f64).collect::<Vec<_>>())
}

/// Plain Gini coefficient of a non-negative sample.
pub fn gini(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len() as f64;
    let sum: f64 = sorted.iter().sum();
    if sum <= 0.0 {
        return 0.0;
    }
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x)
        .sum();
    (2.0 * weighted) / (n * sum) - (n + 1.0) / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmsa_metastore::{SymbolTable, TransferRecord};
    use dmsa_rucio_sim::Activity;

    fn transfer(start_s: i64, bytes: u64, dest: Sym) -> TransferRecord {
        TransferRecord {
            transfer_id: 0,
            lfn: SymbolTable::UNKNOWN,
            dataset: SymbolTable::UNKNOWN,
            proddblock: SymbolTable::UNKNOWN,
            scope: SymbolTable::UNKNOWN,
            file_size: bytes,
            starttime: SimTime::from_secs(start_s),
            endtime: SimTime::from_secs(start_s + 10),
            source_site: dest,
            destination_site: dest,
            activity: Activity::DataRebalancing,
            jeditaskid: None,
            is_download: false,
            is_upload: false,
            attempt: 1,
            succeeded: true,
            gt_pandaid: None,
            gt_source_site: dest,
            gt_destination_site: dest,
            gt_file_size: bytes,
        }
    }

    fn window(secs: i64) -> Interval {
        Interval::new(SimTime::EPOCH, SimTime::from_secs(secs))
    }

    #[test]
    fn series_buckets_volume_by_start_time() {
        let mut store = MetaStore::new();
        let s = store.register_site("A");
        store.transfers.push(transfer(10, 100, s));
        store.transfers.push(transfer(20, 50, s));
        store.transfers.push(transfer(70, 7, s));
        let series = volume_series(&store, window(120), SimDuration::from_secs(60));
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].bytes, 150);
        assert_eq!(series[0].count, 2);
        assert_eq!(series[1].bytes, 7);
    }

    #[test]
    fn empty_buckets_are_materialized() {
        let mut store = MetaStore::new();
        let s = store.register_site("A");
        store.transfers.push(transfer(10, 1, s));
        let series = volume_series(&store, window(600), SimDuration::from_secs(60));
        assert_eq!(series.len(), 10);
        assert_eq!(series.iter().filter(|p| p.bytes == 0).count(), 9);
    }

    #[test]
    fn peak_to_trough_over_nonzero() {
        let mut store = MetaStore::new();
        let s = store.register_site("A");
        store.transfers.push(transfer(10, 1000, s));
        store.transfers.push(transfer(70, 10, s));
        let series = volume_series(&store, window(600), SimDuration::from_secs(60));
        assert_eq!(peak_to_trough(&series), Some(100.0));
    }

    #[test]
    fn peak_to_trough_needs_two_buckets() {
        let mut store = MetaStore::new();
        let s = store.register_site("A");
        store.transfers.push(transfer(10, 1000, s));
        let series = volume_series(&store, window(60), SimDuration::from_secs(60));
        assert_eq!(peak_to_trough(&series), None);
    }

    #[test]
    fn gini_extremes() {
        assert!(gini(&[]).abs() < 1e-12);
        assert!(gini(&[5.0, 5.0, 5.0, 5.0]).abs() < 1e-12, "even split");
        let concentrated = gini(&[0.0, 0.0, 0.0, 100.0]);
        assert!(concentrated > 0.7, "one-site concentration {concentrated}");
        // Monotone in concentration.
        assert!(gini(&[1.0, 1.0, 1.0, 97.0]) > gini(&[10.0, 20.0, 30.0, 40.0]));
    }

    #[test]
    fn site_gini_reads_destinations() {
        let mut store = MetaStore::new();
        let a = store.register_site("A");
        let b = store.register_site("B");
        store.transfers.push(transfer(1, 1_000_000, a));
        store.transfers.push(transfer(2, 1, b));
        let g = site_volume_gini(&store, window(60));
        assert!(
            g > 0.4,
            "skewed destinations should show high Gini, got {g}"
        );
    }
}
