//! Fig 2: the cumulative managed-volume curve, formatted for reporting.

use dmsa_rucio_sim::growth::{volume_at, GrowthPoint};
use serde::{Deserialize, Serialize};

/// One reporting row of the Fig 2 series.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct YearVolume {
    /// Calendar year (mid-year sample point).
    pub year: u32,
    /// Cumulative volume, exabytes.
    pub exabytes: f64,
}

/// Downsample a monthly growth series to mid-year points.
pub fn yearly(series: &[GrowthPoint]) -> Vec<YearVolume> {
    let Some(last) = series.last() else {
        return Vec::new();
    };
    let first_year = series[0].year.floor() as u32;
    let last_year = last.year.floor() as u32;
    (first_year..=last_year)
        .filter_map(|y| {
            volume_at(series, y as f64 + 0.5).map(|v| YearVolume {
                year: y,
                exabytes: v,
            })
        })
        .collect()
}

/// Growth multiple between two years (`None` if either is missing or the
/// earlier volume is zero).
pub fn growth_multiple(series: &[GrowthPoint], from_year: f64, to_year: f64) -> Option<f64> {
    let a = volume_at(series, from_year)?;
    let b = volume_at(series, to_year)?;
    (a > 0.0).then(|| b / a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmsa_rucio_sim::growth::growth_series;
    use dmsa_simcore::RngFactory;

    #[test]
    fn yearly_downsampling_is_monotone() {
        let s = growth_series(&RngFactory::new(1), 2024.5);
        let y = yearly(&s);
        assert!(y.len() >= 15);
        assert_eq!(y[0].year, 2009);
        assert!(y.windows(2).all(|w| w[1].exabytes >= w[0].exabytes));
    }

    #[test]
    fn growth_multiple_2018_to_2024_exceeds_two() {
        let s = growth_series(&RngFactory::new(1), 2024.5);
        let m = growth_multiple(&s, 2018.5, 2024.5).unwrap();
        assert!(m >= 2.0, "paper: more than a doubling since 2018, got {m}");
    }

    #[test]
    fn empty_series_behaves() {
        assert!(yearly(&[]).is_empty());
        assert!(growth_multiple(&[], 2018.0, 2024.0).is_none());
    }
}
