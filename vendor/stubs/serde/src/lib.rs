//! Offline compile stub for `serde` 1.x.
//!
//! Traits have real shapes (so custom impls written against this stub
//! also compile against real serde) and the scalar/string/sequence
//! subset of the data model is *functional*: primitives, `String`,
//! `Option<T>`, and `Vec<T>` round-trip through a real format
//! implementation (the offline `serde_json` stub). Everything outside
//! that subset — maps, sets, tuples, arrays, and every derived struct —
//! still reports an error at runtime, because the derive stub emits
//! inert impls.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub mod ser {
    /// Error raised by a `Serializer`.
    pub trait Error: Sized + std::fmt::Debug + std::fmt::Display {
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }

    pub use self::Error as SerError;

    /// Sequence serializer returned by `Serializer::serialize_seq`.
    pub trait SerializeSeq {
        type Ok;
        type Error: Error;
        fn serialize_element<T: crate::Serialize + ?Sized>(
            &mut self,
            value: &T,
        ) -> Result<(), Self::Error>;
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }
}

pub mod de {
    /// Error raised by a `Deserializer`.
    pub trait Error: Sized + std::fmt::Debug + std::fmt::Display {
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }

    pub use self::Error as DeError;

    /// Receives whatever the format found. Defaults reject every shape,
    /// so a visitor only accepts what it overrides — same contract as
    /// real serde, minus the borrowed-data variants.
    pub trait Visitor<'de>: Sized {
        type Value;
        fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result;

        fn visit_bool<E: Error>(self, _v: bool) -> Result<Self::Value, E> {
            Err(E::custom("unexpected bool"))
        }
        fn visit_i64<E: Error>(self, _v: i64) -> Result<Self::Value, E> {
            Err(E::custom("unexpected integer"))
        }
        fn visit_u64<E: Error>(self, _v: u64) -> Result<Self::Value, E> {
            Err(E::custom("unexpected unsigned integer"))
        }
        fn visit_f64<E: Error>(self, _v: f64) -> Result<Self::Value, E> {
            Err(E::custom("unexpected float"))
        }
        fn visit_str<E: Error>(self, _v: &str) -> Result<Self::Value, E> {
            Err(E::custom("unexpected string"))
        }
        fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
            self.visit_str(&v)
        }
        fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
            Err(E::custom("unexpected null"))
        }
        fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
            Err(E::custom("unexpected none"))
        }
        fn visit_some<D: crate::Deserializer<'de>>(
            self,
            _deserializer: D,
        ) -> Result<Self::Value, D::Error> {
            Err(D::Error::custom("unexpected some"))
        }
        fn visit_seq<A: SeqAccess<'de>>(self, _seq: A) -> Result<Self::Value, A::Error> {
            Err(A::Error::custom("unexpected sequence"))
        }
    }

    /// Iterator over a sequence being deserialized.
    pub trait SeqAccess<'de> {
        type Error: Error;
        fn next_element<T: crate::Deserialize<'de>>(
            &mut self,
        ) -> Result<Option<T>, Self::Error>;
        fn size_hint(&self) -> Option<usize> {
            None
        }
    }
}

pub trait Serializer: Sized {
    type Ok;
    type Error: ser::Error;
    type SerializeSeq: ser::SerializeSeq<Ok = Self::Ok, Error = Self::Error>;

    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
}

pub trait Deserializer<'de>: Sized {
    type Error: de::Error;

    fn deserialize_any<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;

    // Hint methods default to `deserialize_any` (self-describing formats
    // like the offline serde_json stub ignore the hints anyway).
    fn deserialize_bool<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_i64<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_u64<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_f64<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_str<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_string<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_seq<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
    fn deserialize_option<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        self.deserialize_any(visitor)
    }
}

pub trait Serialize {
    fn serialize<S>(&self, serializer: S) -> Result<S::Ok, S::Error>
    where
        S: Serializer;
}

pub trait Deserialize<'de>: Sized {
    fn deserialize<D>(deserializer: D) -> Result<Self, D::Error>
    where
        D: Deserializer<'de>;
}

pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

// --------------------------------------------------------------------------
// Functional impls: the scalar/string/sequence subset
// --------------------------------------------------------------------------

macro_rules! uint_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_u64(*self as u64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<DE: Deserializer<'de>>(d: DE) -> Result<Self, DE::Error> {
                struct V;
                impl<'de> de::Visitor<'de> for V {
                    type Value = $t;
                    fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                        write!(f, "an unsigned integer")
                    }
                    fn visit_u64<E: de::Error>(self, v: u64) -> Result<$t, E> {
                        <$t>::try_from(v).map_err(|_| E::custom("integer out of range"))
                    }
                    fn visit_i64<E: de::Error>(self, v: i64) -> Result<$t, E> {
                        <$t>::try_from(v).map_err(|_| E::custom("integer out of range"))
                    }
                }
                d.deserialize_u64(V)
            }
        }
    )*};
}

uint_impls!(u8, u16, u32, u64, usize);

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_i64(*self as i64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<DE: Deserializer<'de>>(d: DE) -> Result<Self, DE::Error> {
                struct V;
                impl<'de> de::Visitor<'de> for V {
                    type Value = $t;
                    fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                        write!(f, "an integer")
                    }
                    fn visit_i64<E: de::Error>(self, v: i64) -> Result<$t, E> {
                        <$t>::try_from(v).map_err(|_| E::custom("integer out of range"))
                    }
                    fn visit_u64<E: de::Error>(self, v: u64) -> Result<$t, E> {
                        <$t>::try_from(v).map_err(|_| E::custom("integer out of range"))
                    }
                }
                d.deserialize_i64(V)
            }
        }
    )*};
}

int_impls!(i8, i16, i32, i64, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_f64(*self as f64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<DE: Deserializer<'de>>(d: DE) -> Result<Self, DE::Error> {
                struct V;
                impl<'de> de::Visitor<'de> for V {
                    type Value = $t;
                    fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                        write!(f, "a float")
                    }
                    fn visit_f64<E: de::Error>(self, v: f64) -> Result<$t, E> {
                        Ok(v as $t)
                    }
                    fn visit_u64<E: de::Error>(self, v: u64) -> Result<$t, E> {
                        Ok(v as $t)
                    }
                    fn visit_i64<E: de::Error>(self, v: i64) -> Result<$t, E> {
                        Ok(v as $t)
                    }
                }
                d.deserialize_f64(V)
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<DE: Deserializer<'de>>(d: DE) -> Result<Self, DE::Error> {
        struct V;
        impl<'de> de::Visitor<'de> for V {
            type Value = bool;
            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "a boolean")
            }
            fn visit_bool<E: de::Error>(self, v: bool) -> Result<bool, E> {
                Ok(v)
            }
        }
        d.deserialize_bool(V)
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut buf = [0u8; 4];
        s.serialize_str(self.encode_utf8(&mut buf))
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<DE: Deserializer<'de>>(d: DE) -> Result<Self, DE::Error> {
        struct V;
        impl<'de> de::Visitor<'de> for V {
            type Value = char;
            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "a single-character string")
            }
            fn visit_str<E: de::Error>(self, v: &str) -> Result<char, E> {
                let mut chars = v.chars();
                match (chars.next(), chars.next()) {
                    (Some(c), None) => Ok(c),
                    _ => Err(E::custom("expected a single character")),
                }
            }
        }
        d.deserialize_str(V)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<DE: Deserializer<'de>>(d: DE) -> Result<Self, DE::Error> {
        struct V;
        impl<'de> de::Visitor<'de> for V {
            type Value = String;
            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "a string")
            }
            fn visit_str<E: de::Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_string())
            }
            fn visit_string<E: de::Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        d.deserialize_string(V)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_unit()
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<DE: Deserializer<'de>>(d: DE) -> Result<Self, DE::Error> {
        struct V;
        impl<'de> de::Visitor<'de> for V {
            type Value = ();
            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "null")
            }
            fn visit_unit<E: de::Error>(self) -> Result<(), E> {
                Ok(())
            }
        }
        d.deserialize_any(V)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        use ser::SerializeSeq as _;
        let mut seq = s.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<DE: Deserializer<'de>>(d: DE) -> Result<Self, DE::Error> {
        struct V<T>(std::marker::PhantomData<T>);
        impl<'de, T: Deserialize<'de>> de::Visitor<'de> for V<T> {
            type Value = Vec<T>;
            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "a sequence")
            }
            fn visit_seq<A: de::SeqAccess<'de>>(self, mut seq: A) -> Result<Vec<T>, A::Error> {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0));
                while let Some(item) = seq.next_element()? {
                    out.push(item);
                }
                Ok(out)
            }
        }
        d.deserialize_seq(V(std::marker::PhantomData))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            None => s.serialize_none(),
            Some(v) => s.serialize_some(v),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<DE: Deserializer<'de>>(d: DE) -> Result<Self, DE::Error> {
        struct V<T>(std::marker::PhantomData<T>);
        impl<'de, T: Deserialize<'de>> de::Visitor<'de> for V<T> {
            type Value = Option<T>;
            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "an optional value")
            }
            fn visit_none<E: de::Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_unit<E: de::Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(self, d: D) -> Result<Option<T>, D::Error> {
                T::deserialize(d).map(Some)
            }
        }
        d.deserialize_option(V(std::marker::PhantomData))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        T::deserialize(d).map(Box::new)
    }
}

// --------------------------------------------------------------------------
// Inert impls: shapes outside the offline data-model subset
// --------------------------------------------------------------------------

macro_rules! stub_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, _s: S) -> Result<S::Ok, S::Error> {
                Err(<S::Error as ser::Error>::custom("offline serde stub"))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<DE: Deserializer<'de>>(_d: DE) -> Result<Self, DE::Error> {
                Err(<DE::Error as de::Error>::custom("offline serde stub"))
            }
        }
    )*};
}

stub_impls!(u128, i128);

impl<K: Serialize, V: Serialize, H> Serialize for std::collections::HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, _s: S) -> Result<S::Ok, S::Error> {
        Err(<S::Error as ser::Error>::custom("offline serde stub"))
    }
}

impl<'de, K, V, H> Deserialize<'de> for std::collections::HashMap<K, V, H>
where
    K: Deserialize<'de>,
    V: Deserialize<'de>,
    H: Default,
{
    fn deserialize<DE: Deserializer<'de>>(_d: DE) -> Result<Self, DE::Error> {
        Err(<DE::Error as de::Error>::custom("offline serde stub"))
    }
}

impl<T: Serialize, H> Serialize for std::collections::HashSet<T, H> {
    fn serialize<S: Serializer>(&self, _s: S) -> Result<S::Ok, S::Error> {
        Err(<S::Error as ser::Error>::custom("offline serde stub"))
    }
}

impl<'de, T: Deserialize<'de>, H: Default> Deserialize<'de> for std::collections::HashSet<T, H> {
    fn deserialize<DE: Deserializer<'de>>(_d: DE) -> Result<Self, DE::Error> {
        Err(<DE::Error as de::Error>::custom("offline serde stub"))
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, _s: S) -> Result<S::Ok, S::Error> {
        Err(<S::Error as ser::Error>::custom("offline serde stub"))
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<DE: Deserializer<'de>>(_d: DE) -> Result<Self, DE::Error> {
        Err(<DE::Error as de::Error>::custom("offline serde stub"))
    }
}

macro_rules! tuple_impls {
    ($(($($n:ident),+))*) => {$(
        impl<$($n: Serialize),+> Serialize for ($($n,)+) {
            fn serialize<S: Serializer>(&self, _s: S) -> Result<S::Ok, S::Error> {
                Err(<S::Error as ser::Error>::custom("offline serde stub"))
            }
        }
        impl<'de, $($n: Deserialize<'de>),+> Deserialize<'de> for ($($n,)+) {
            fn deserialize<DE: Deserializer<'de>>(_d: DE) -> Result<Self, DE::Error> {
                Err(<DE::Error as de::Error>::custom("offline serde stub"))
            }
        }
    )*};
}

tuple_impls!((A)(A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E)(A, B, C, D, E, F));
