//! String interning.
//!
//! Job, file, and transfer records reference the same site names, LFNs,
//! dataset names, and scopes millions of times. Interning maps each
//! distinct string to a dense [`Sym`] so records stay compact and the
//! matcher's string-equality joins become integer comparisons.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Interned string handle.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Sym(pub u32);

/// Append-only interning table.
///
/// `Sym(0)` is always the reserved `"UNKNOWN"` sentinel that production
/// metadata uses for unidentified sites (paper §3.2: "the 102nd site is
/// labeled as *unknown*, aggregating all transfers with either an
/// unidentified source or destination").
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SymbolTable {
    strings: Vec<String>,
    index: HashMap<String, Sym>,
}

impl SymbolTable {
    /// The reserved unknown-site symbol.
    pub const UNKNOWN: Sym = Sym(0);

    /// New table containing only the `"UNKNOWN"` sentinel.
    pub fn new() -> Self {
        let mut t = SymbolTable {
            strings: Vec::new(),
            index: HashMap::new(),
        };
        let u = t.intern("UNKNOWN");
        debug_assert_eq!(u, Self::UNKNOWN);
        t
    }

    /// Intern `s`, returning its symbol (existing or fresh).
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&sym) = self.index.get(s) {
            return sym;
        }
        let sym = Sym(self.strings.len() as u32);
        self.strings.push(s.to_string());
        self.index.insert(s.to_string(), sym);
        sym
    }

    /// Resolve a symbol back to its string.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.strings[sym.0 as usize]
    }

    /// Look up without interning.
    pub fn get(&self, s: &str) -> Option<Sym> {
        self.index.get(s).copied()
    }

    /// Number of distinct strings (including the sentinel).
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Only the sentinel present?
    pub fn is_empty(&self) -> bool {
        self.strings.len() <= 1
    }
}

impl Default for SymbolTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_is_symbol_zero() {
        let t = SymbolTable::new();
        assert_eq!(t.get("UNKNOWN"), Some(SymbolTable::UNKNOWN));
        assert_eq!(t.resolve(SymbolTable::UNKNOWN), "UNKNOWN");
    }

    #[test]
    fn interning_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("CERN-PROD");
        let b = t.intern("CERN-PROD");
        assert_eq!(a, b);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let mut t = SymbolTable::new();
        let a = t.intern("A");
        let b = t.intern("B");
        assert_ne!(a, b);
        assert_eq!(t.resolve(a), "A");
        assert_eq!(t.resolve(b), "B");
    }

    #[test]
    fn get_does_not_intern() {
        let t = SymbolTable::new();
        assert!(t.get("missing").is_none());
        assert!(t.is_empty());
    }
}
