//! Property tests for the metadata layer: corruption invariants and
//! symbol-table behaviour under arbitrary inputs.

use dmsa_metastore::{
    CorruptionModel, FileDirection, FileRecord, JobRecord, MetaStore, SymbolTable, TransferRecord,
};
use dmsa_panda_sim::{IoMode, JobStatus, TaskStatus};
use dmsa_rucio_sim::Activity;
use dmsa_simcore::{RngFactory, SimTime};
use proptest::prelude::*;

fn store_with(n_jobs: u64, n_transfers: u64) -> MetaStore {
    let mut store = MetaStore::new();
    let site = store.register_site("SITE");
    for p in 0..n_jobs {
        store.jobs.push(JobRecord {
            pandaid: p,
            jeditaskid: p / 3,
            computingsite: site,
            creationtime: SimTime::from_secs(p as i64),
            starttime: SimTime::from_secs(p as i64 + 10),
            endtime: SimTime::from_secs(p as i64 + 100),
            ninputfilebytes: 1_000 + p,
            noutputfilebytes: 500 + p,
            io_mode: IoMode::StageIn,
            status: JobStatus::Finished,
            task_status: TaskStatus::Done,
            error_code: None,
            is_user_analysis: true,
        });
        store.files.push(FileRecord {
            pandaid: p,
            jeditaskid: p / 3,
            lfn: site,
            dataset: site,
            proddblock: site,
            scope: site,
            file_size: 1_000 + p,
            direction: FileDirection::Input,
        });
    }
    for id in 0..n_transfers {
        store.transfers.push(TransferRecord {
            transfer_id: id,
            lfn: site,
            dataset: site,
            proddblock: site,
            scope: site,
            file_size: 1_000_000 + id,
            starttime: SimTime::from_secs(id as i64),
            endtime: SimTime::from_secs(id as i64 + 30),
            source_site: site,
            destination_site: site,
            activity: Activity::AnalysisDownload,
            jeditaskid: Some(id / 5),
            is_download: true,
            is_upload: false,
            attempt: 1,
            succeeded: true,
            gt_pandaid: Some(id),
            gt_source_site: site,
            gt_destination_site: site,
            gt_file_size: 1_000_000 + id,
        });
    }
    store
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn corruption_preserves_ground_truth_and_counts(
        seed in 0u64..1_000,
        scale in 0.0f64..2.5,
        n in 10u64..300,
    ) {
        let mut store = store_with(n / 3 + 1, n);
        let before_transfers = store.transfers.len();
        let before_jobs = store.jobs.len();
        let model = CorruptionModel::default().scaled(scale);
        model.apply(&mut store, &RngFactory::new(seed));
        // Records may vanish, never appear.
        prop_assert!(store.transfers.len() <= before_transfers);
        prop_assert_eq!(store.jobs.len(), before_jobs, "corruption never drops jobs");
        // Ground truth is untouchable.
        for t in &store.transfers {
            prop_assert!(t.gt_pandaid.is_some());
            prop_assert_eq!(t.gt_file_size, 1_000_000 + t.transfer_id);
            prop_assert!(store.is_valid_site(t.gt_source_site));
            prop_assert!(store.is_valid_site(t.gt_destination_site));
        }
        // Timelines are never corrupted (the paper's pathologies are about
        // identity/size fields, not clocks).
        for t in &store.transfers {
            prop_assert!(t.endtime > t.starttime);
        }
    }

    #[test]
    fn corruption_is_a_pure_function_of_seed(
        seed in 0u64..1_000,
        n in 10u64..150,
    ) {
        let run = || {
            let mut store = store_with(n / 3 + 1, n);
            CorruptionModel::default().apply(&mut store, &RngFactory::new(seed));
            store
                .transfers
                .iter()
                .map(|t| (t.transfer_id, t.file_size, t.destination_site, t.jeditaskid))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn zero_scale_is_identity(
        seed in 0u64..100,
        n in 10u64..150,
    ) {
        let mut store = store_with(n / 3 + 1, n);
        let before: Vec<u64> = store.transfers.iter().map(|t| t.file_size).collect();
        CorruptionModel::default().scaled(0.0).apply(&mut store, &RngFactory::new(seed));
        let after: Vec<u64> = store.transfers.iter().map(|t| t.file_size).collect();
        prop_assert_eq!(before, after);
    }

    #[test]
    fn symbol_table_round_trips_arbitrary_strings(
        strings in prop::collection::vec("[a-zA-Z0-9_./-]{0,40}", 1..40),
    ) {
        let mut table = SymbolTable::new();
        let syms: Vec<_> = strings.iter().map(|s| table.intern(s)).collect();
        for (s, &sym) in strings.iter().zip(&syms) {
            prop_assert_eq!(table.resolve(sym), s.as_str());
            prop_assert_eq!(table.get(s), Some(sym));
            // Idempotent.
            prop_assert_eq!(table.intern(s), sym);
        }
        // Table size equals distinct strings + sentinel ("UNKNOWN" inputs
        // collapse onto the sentinel rather than growing the table).
        let distinct: std::collections::HashSet<_> = strings
            .iter()
            .filter(|s| s.as_str() != "UNKNOWN")
            .collect();
        prop_assert_eq!(table.len(), distinct.len() + 1);
    }
}
