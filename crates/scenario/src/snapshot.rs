//! Deterministic checkpoint snapshots of a mid-flight campaign.
//!
//! [`encode`] serializes **every piece of mutable driver state** — the
//! pending event queue (with its FIFO tie-break counters), the exact
//! positions of all RNG streams, the transfer engine (slot clocks, its two
//! RNG streams, path counters), the replica catalog, replication rules,
//! circuit-breaker state, in-progress task/job/transfer accumulators, and
//! the id counters — into a self-contained byte payload. [`decode`]
//! rebuilds a [`Driver`] from a payload plus the *same* scenario config:
//! everything derivable from the config (topology, bandwidth oracle, fault
//! oracle, samplers, brokerage) is reconstructed rather than serialized,
//! which keeps snapshots small and makes it impossible for a stale
//! checkpoint to smuggle in divergent tuning.
//!
//! The resumed campaign is byte-identical to the uninterrupted same-seed
//! run; `crates/scenario` locks this with tests and the CLI locks it again
//! end-to-end over the export JSON.
//!
//! Decoding never panics on malformed input: every structural error is
//! reported with the byte offset where the payload stopped making sense,
//! and every cross-field invariant (catalog back-pointers, rule id
//! density, slot-table shape, site counts) is revalidated so a corrupted
//! checkpoint is rejected instead of corrupting a resumed campaign.

use crate::config::ScenarioConfig;
use crate::driver::{Driver, Event, PendingJob, TaskCtx};
use dmsa_gridnet::{
    BreakerSnapshot, BreakerState, HealthCounters, HealthMonitor, HealthSnapshot, HealthSubject,
    OpenEpisode, RseId, SiteId,
};
use dmsa_panda_sim::task::TaskProgress;
use dmsa_panda_sim::{IoMode, Job, JobId, JobStatus, TaskId, TaskKind, TaskStatus};
use dmsa_rucio_sim::catalog::{ContainerEntry, ContainerId, DatasetEntry, FileEntry};
use dmsa_rucio_sim::transfer::TransferEngineSnapshot;
use dmsa_rucio_sim::{
    Activity, DatasetId, DidName, FileId, ReplicaCatalog, ReplicationRule, RuleEngine, RuleId,
    Scope, TransferEvent, TransferId, TransferPathStats,
};
use dmsa_simcore::codec::{CodecError, Reader, Writer};
use dmsa_simcore::interval::Interval;
use dmsa_simcore::{EventQueue, SimDuration, SimRng, SimTime, Sym, SymbolTable};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Version of the snapshot payload layout. Bumped on any incompatible
/// change; [`decode`] refuses payloads from a newer layout with a
/// found-vs-supported message instead of misreading them.
/// Version history: v2 interned catalog/transfer-event names (the
/// catalog's symbol table is now part of the payload and name fields are
/// `u32` symbol ids) and added the delivered-event counter. v3 widened
/// the config fingerprint to cover **every** behavior-affecting knob
/// (fault rates, breaker settings, retry budgets, workload shape — not
/// just seed/duration/datasets) plus a structural fingerprint consulted
/// by the deliberate-fork path.
pub const SNAPSHOT_VERSION: u32 = 3;

/// How strictly [`decode`] matches the resume config against the config
/// the snapshot was taken under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ResumeMode {
    /// Resume: every behavior-affecting knob must match, otherwise the
    /// resumed campaign would silently replay divergent state.
    Strict,
    /// Deliberate fork ([`fork_with_config`]): only the structural knobs
    /// (seed, topology) must match; fault/retry/health/workload knobs may
    /// differ and take effect from the snapshot time onward.
    Fork,
}

// ---------------------------------------------------------------------------
// Encode
// ---------------------------------------------------------------------------

pub(crate) fn encode(d: &Driver) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u32(SNAPSHOT_VERSION);

    // Config fingerprint: enough to catch a resume under the wrong
    // scenario before any state is misinterpreted. The legible fields
    // (seed/duration/datasets/sites) drive the human-readable mismatch
    // message; the two hashes are the actual guarantees — `behavior`
    // covers every knob, `structural` only what a deliberate fork must
    // still agree on.
    w.put_u64(d.config.seed);
    w.put_i64(d.config.duration.as_millis());
    w.put_u64(d.config.initial_datasets as u64);
    w.put_u32(d.topology.n_sites() as u32);
    w.put_u64(d.config.behavior_fingerprint());
    w.put_u64(d.config.structural_fingerprint());

    // Clock + event queue.
    w.put_i64(d.queue.now().as_millis());
    w.put_u64(d.queue.next_seq());
    let entries = d.queue.snapshot_entries();
    w.put_seq_len(entries.len());
    for (t, seq, ev) in entries {
        w.put_i64(t.as_millis());
        w.put_u64(seq);
        put_event(&mut w, ev);
    }

    // Driver RNG streams.
    put_rng(&mut w, &d.rng_task);
    put_rng(&mut w, &d.rng_job);
    put_rng(&mut w, &d.rng_bg);

    // Transfer engine.
    put_engine(&mut w, &d.engine.snapshot());

    // Replica catalog.
    put_catalog(&mut w, &d.catalog);

    // Replication rules.
    let rules = d.rules.rules();
    w.put_seq_len(rules.len());
    for r in rules {
        put_rule(&mut w, r);
    }

    // Circuit breakers.
    match d.health.as_ref() {
        None => w.put_bool(false),
        Some(m) => {
            w.put_bool(true);
            put_health(&mut w, &m.snapshot());
        }
    }

    // Brokerage load feedback + compute slots.
    put_u32_seq(&mut w, &d.queued);
    put_u32_seq(&mut w, &d.running);
    w.put_seq_len(d.compute_slots.len());
    for heap in &d.compute_slots {
        let mut times: Vec<i64> = heap.iter().map(|Reverse(t)| *t).collect();
        times.sort_unstable();
        w.put_seq_len(times.len());
        for t in times {
            w.put_i64(t);
        }
    }

    // Task contexts.
    w.put_seq_len(d.tasks.len());
    for t in &d.tasks {
        put_task_ctx(&mut w, t);
    }

    // Finished jobs.
    w.put_seq_len(d.finished.len());
    for (job, task_idx, recorded_upload) in &d.finished {
        put_job(&mut w, job);
        w.put_u32(*task_idx);
        w.put_bool(*recorded_upload);
    }

    // Ground-truth transfer events.
    w.put_seq_len(d.transfers.len());
    for (ev, recorded) in &d.transfers {
        put_transfer_event(&mut w, ev);
        w.put_bool(*recorded);
    }

    // Id counters.
    w.put_u64(d.next_pandaid);
    w.put_u64(d.next_taskid);
    w.put_u64(d.next_dio_id);
    w.put_u64(d.next_output_seq);

    // Delivered-event counter (v2).
    w.put_u64(d.events_processed);

    w.into_bytes()
}

// ---------------------------------------------------------------------------
// Decode
// ---------------------------------------------------------------------------

pub(crate) fn decode(config: &ScenarioConfig, bytes: &[u8]) -> Result<Driver, String> {
    let mut r = Reader::new(bytes);
    decode_inner(config, &mut r, ResumeMode::Strict).map_err(|e| e.to_string())
}

/// Decode a snapshot for a **deliberate config fork**: the escape hatch
/// the sweep's warm-start path uses. Only the structural fingerprint
/// (seed + topology) must match the snapshot; every other knob — fault
/// rates, breaker settings, retry budgets, workload shape — is taken
/// from `config` and governs the campaign from the snapshot time onward.
/// Arming or disarming the health loop across the fork is allowed: a
/// newly armed fork starts with fresh (empty-telemetry) breakers, a
/// disarming fork drops the snapshot's breaker state.
pub(crate) fn decode_forked(config: &ScenarioConfig, bytes: &[u8]) -> Result<Driver, String> {
    let mut r = Reader::new(bytes);
    decode_inner(config, &mut r, ResumeMode::Fork).map_err(|e| e.to_string())
}

/// Fully decode-check a snapshot against `config` without resuming it,
/// returning the sim-time it was taken at. This is what a resume ladder
/// calls to decide whether a candidate checkpoint is usable before
/// committing to it: a truncated, corrupted, version-skewed, or
/// wrong-config snapshot is reported as an error (never a panic), so the
/// caller can fall back to an older checkpoint.
pub fn validate(config: &ScenarioConfig, bytes: &[u8]) -> Result<SimTime, String> {
    validate_classified(config, bytes).map_err(|e| e.to_string())
}

/// Coarse taxonomy of snapshot validation failures. Resume ladders and
/// auditors act on the *class*: truncation and corruption mean the file
/// is damaged (fall back to an older checkpoint, flag the artifact);
/// version skew means a different build wrote it (not damage); a
/// fingerprint mismatch means the bytes are fine but the config is wrong
/// (falling back further will not help).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapshotErrorKind {
    /// The payload ends before the layout says it should.
    Truncated,
    /// A different (usually newer) layout version wrote this snapshot.
    VersionSkew,
    /// Structurally sound but taken under a different scenario config.
    FingerprintMismatch,
    /// Any other structural damage: bad tags, broken invariants,
    /// out-of-range references, trailing bytes.
    Corrupt,
}

impl SnapshotErrorKind {
    /// Stable lower-case label for logs and structured errors.
    pub fn label(self) -> &'static str {
        match self {
            SnapshotErrorKind::Truncated => "truncated",
            SnapshotErrorKind::VersionSkew => "version-skew",
            SnapshotErrorKind::FingerprintMismatch => "fingerprint-mismatch",
            SnapshotErrorKind::Corrupt => "corrupt",
        }
    }
}

/// A classified snapshot validation failure: the kind plus the full
/// offset-carrying diagnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotError {
    pub kind: SnapshotErrorKind,
    pub message: String,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for SnapshotError {}

/// [`validate`] with the failure classified into [`SnapshotErrorKind`].
pub fn validate_classified(
    config: &ScenarioConfig,
    bytes: &[u8],
) -> Result<SimTime, SnapshotError> {
    let mut r = Reader::new(bytes);
    decode_inner(config, &mut r, ResumeMode::Strict)
        .map(|d| d.queue.now())
        .map_err(|e| SnapshotError {
            kind: classify(&e.what),
            message: e.to_string(),
        })
}

/// Map a codec diagnostic onto the coarse taxonomy. The codec's error
/// strings are part of its tested contract (`truncated: …`, `snapshot
/// layout version … found`, `… fingerprint mismatch …`), so matching on
/// their stable prefixes here is deliberate, not incidental.
fn classify(what: &str) -> SnapshotErrorKind {
    if what.starts_with("truncated") {
        SnapshotErrorKind::Truncated
    } else if what.starts_with("snapshot layout version") {
        SnapshotErrorKind::VersionSkew
    } else if what.contains("fingerprint") {
        SnapshotErrorKind::FingerprintMismatch
    } else {
        SnapshotErrorKind::Corrupt
    }
}

/// The layout version stamped at the front of a snapshot payload, without
/// decoding (or validating) the rest. Errors only when the payload is too
/// short to carry a version at all.
pub fn peek_version(bytes: &[u8]) -> Result<u32, String> {
    let mut r = Reader::new(bytes);
    r.get_u32().map_err(|e| e.to_string())
}

fn decode_inner(
    config: &ScenarioConfig,
    r: &mut Reader<'_>,
    mode: ResumeMode,
) -> Result<Driver, CodecError> {
    let version = r.get_u32()?;
    if version != SNAPSHOT_VERSION {
        return Err(bad(
            r,
            format!("snapshot layout version {version} found, supported {SNAPSHOT_VERSION}"),
        ));
    }

    // A freshly constructed driver supplies all config-derived state; the
    // snapshot then overwrites everything mutable. `Driver::new` does not
    // seed the catalog or push events — that is `start()`, which a resume
    // must never run. Under `ResumeMode::Fork` the config-derived state
    // (fault oracle, retry policy, breaker thresholds, samplers) is
    // exactly where the forked knobs take effect.
    let mut d = Driver::new(config.clone());

    let seed = r.get_u64()?;
    let duration_ms = r.get_i64()?;
    let initial_datasets = r.get_u64()?;
    let n_sites = r.get_u32()? as usize;
    let behavior_fp = r.get_u64()?;
    let structural_fp = r.get_u64()?;
    if structural_fp != config.structural_fingerprint() || n_sites != d.topology.n_sites() {
        return Err(bad(
            r,
            format!(
                "snapshot structural fingerprint mismatch: taken under seed {seed} with \
                 {n_sites} sites — {} config has seed {} and {} sites (seed and topology can \
                 never change across a resume or fork)",
                if mode == ResumeMode::Fork {
                    "fork"
                } else {
                    "resume"
                },
                config.seed,
                d.topology.n_sites()
            ),
        ));
    }
    if mode == ResumeMode::Strict {
        if seed != config.seed
            || duration_ms != config.duration.as_millis()
            || initial_datasets != config.initial_datasets as u64
        {
            return Err(bad(
                r,
                format!(
                    "snapshot fingerprint mismatch: taken under seed {seed}, duration {duration_ms} ms, \
                     {initial_datasets} datasets — resume config has seed {}, \
                     duration {} ms, {} datasets",
                    config.seed,
                    config.duration.as_millis(),
                    config.initial_datasets,
                ),
            ));
        }
        if behavior_fp != config.behavior_fingerprint() {
            return Err(bad(
                r,
                format!(
                    "snapshot behavior fingerprint mismatch ({behavior_fp:#018x} vs \
                     {:#018x}): the resume config differs in a behavior-affecting knob \
                     (fault rates, breaker settings, retry budget, workload, corruption, \
                     or traffic fractions); resuming would silently replay divergent \
                     state — use the deliberate fork entry point if the change is intended",
                    config.behavior_fingerprint()
                ),
            ));
        }
    }

    // Clock + event queue.
    let now = get_time(r)?;
    let next_seq = r.get_u64()?;
    let n = r.get_seq_len(17)?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let t = get_time(r)?;
        let seq = r.get_u64()?;
        if seq >= next_seq {
            return Err(bad(
                r,
                format!("queue entry seq {seq} >= next_seq {next_seq}"),
            ));
        }
        let ev = get_event(r)?;
        entries.push((t, seq, ev));
    }
    d.queue = EventQueue::restore(entries, next_seq, now);

    // Driver RNG streams.
    d.rng_task = get_rng(r)?;
    d.rng_job = get_rng(r)?;
    d.rng_bg = get_rng(r)?;

    // Transfer engine.
    let engine_snap = get_engine(r)?;
    d.engine
        .restore(engine_snap)
        .map_err(|e| bad(r, format!("transfer engine: {e}")))?;

    // Replica catalog.
    d.catalog = get_catalog(r)?;

    // Replication rules.
    let n = r.get_seq_len(8)?;
    let mut rules = Vec::with_capacity(n);
    for _ in 0..n {
        rules.push(get_rule(r)?);
    }
    d.rules = RuleEngine::from_rules(rules).map_err(|e| bad(r, format!("rules: {e}")))?;

    // Circuit breakers. On a strict resume the armed/disarmed choice must
    // agree with the config, otherwise the resumed decision paths would
    // diverge from the run that produced the snapshot. A deliberate fork
    // may flip the switch: arming starts fresh breakers (empty
    // telemetry), disarming drops the snapshot's breaker state.
    let had_health = r.get_bool()?;
    let snap_health = if had_health {
        let snap = get_health(r)?;
        if snap.sites.len() != d.topology.n_sites() {
            return Err(bad(
                r,
                format!(
                    "health snapshot covers {} sites, topology has {}",
                    snap.sites.len(),
                    d.topology.n_sites()
                ),
            ));
        }
        Some(snap)
    } else {
        None
    };
    d.health = match (snap_health, config.health.enabled) {
        (None, false) => None,
        (Some(snap), true) => Some(HealthMonitor::restore(config.health.clone(), snap)),
        (None, true) if mode == ResumeMode::Fork => Some(HealthMonitor::new(
            config.health.clone(),
            d.topology.n_sites(),
        )),
        (Some(_), false) if mode == ResumeMode::Fork => None,
        (snap, cfg_armed) => {
            return Err(bad(
                r,
                format!(
                    "health loop mismatch: snapshot armed = {}, config armed = {cfg_armed}",
                    snap.is_some()
                ),
            ));
        }
    };

    // Brokerage load feedback + compute slots.
    d.queued = get_u32_seq(r, d.topology.n_sites(), "queued")?;
    d.running = get_u32_seq(r, d.topology.n_sites(), "running")?;
    let n = r.get_seq_len(8)?;
    if n != d.compute_slots.len() {
        return Err(bad(
            r,
            format!(
                "{n} compute-slot rows, topology has {}",
                d.compute_slots.len()
            ),
        ));
    }
    for (site, heap) in d.compute_slots.iter_mut().enumerate() {
        let k = r.get_seq_len(8)?;
        if k != heap.len() {
            return Err(bad(
                r,
                format!(
                    "site {site} has {k} slot clocks, topology says {}",
                    heap.len()
                ),
            ));
        }
        let mut fresh = BinaryHeap::with_capacity(k);
        for _ in 0..k {
            fresh.push(Reverse(r.get_i64()?));
        }
        *heap = fresh;
    }

    // Task contexts.
    let n = r.get_seq_len(19)?;
    let mut tasks = Vec::with_capacity(n);
    for _ in 0..n {
        tasks.push(get_task_ctx(r)?);
    }
    d.tasks = tasks;

    // Finished jobs. Task indices must point into the task table.
    let n = r.get_seq_len(60)?;
    let mut finished = Vec::with_capacity(n);
    for _ in 0..n {
        let job = get_job(r)?;
        let task_idx = r.get_u32()?;
        if task_idx as usize >= d.tasks.len() {
            return Err(bad(
                r,
                format!(
                    "finished job points at task {task_idx} of {}",
                    d.tasks.len()
                ),
            ));
        }
        let recorded_upload = r.get_bool()?;
        finished.push((job, task_idx, recorded_upload));
    }
    d.finished = finished;

    // Ground-truth transfer events.
    let n = r.get_seq_len(80)?;
    let mut transfers = Vec::with_capacity(n);
    let n_syms = d.catalog.names().len() as u32;
    for i in 0..n {
        let ev = get_transfer_event(r)?;
        if ev.lfn.0 >= n_syms || ev.dataset.0 >= n_syms || ev.proddblock.0 >= n_syms {
            return Err(bad(
                r,
                format!("transfer event {i} name symbol out of range"),
            ));
        }
        let recorded = r.get_bool()?;
        transfers.push((ev, recorded));
    }
    d.transfers = transfers;

    // Id counters.
    d.next_pandaid = r.get_u64()?;
    d.next_taskid = r.get_u64()?;
    d.next_dio_id = r.get_u64()?;
    d.next_output_seq = r.get_u64()?;

    // Delivered-event counter (v2).
    d.events_processed = r.get_u64()?;

    if !r.is_exhausted() {
        return Err(bad(
            r,
            format!("{} trailing bytes after snapshot payload", r.remaining()),
        ));
    }
    Ok(d)
}

fn bad(r: &Reader<'_>, what: String) -> CodecError {
    CodecError {
        offset: r.offset(),
        what,
    }
}

// ---------------------------------------------------------------------------
// Leaf helpers
// ---------------------------------------------------------------------------

fn put_time(w: &mut Writer, t: SimTime) {
    w.put_i64(t.as_millis());
}

fn get_time(r: &mut Reader<'_>) -> Result<SimTime, CodecError> {
    Ok(SimTime::from_millis(r.get_i64()?))
}

fn put_rng(w: &mut Writer, rng: &SimRng) {
    for word in rng.state() {
        w.put_u64(word);
    }
}

fn get_rng(r: &mut Reader<'_>) -> Result<SimRng, CodecError> {
    let mut s = [0u64; 4];
    for word in &mut s {
        *word = r.get_u64()?;
    }
    if s == [0; 4] {
        return Err(bad(r, "all-zero RNG state (xoshiro fixed point)".into()));
    }
    Ok(SimRng::from_state(s))
}

fn put_opt_u64(w: &mut Writer, v: Option<u64>) {
    match v {
        None => w.put_bool(false),
        Some(x) => {
            w.put_bool(true);
            w.put_u64(x);
        }
    }
}

fn get_opt_u64(r: &mut Reader<'_>) -> Result<Option<u64>, CodecError> {
    Ok(if r.get_bool()? {
        Some(r.get_u64()?)
    } else {
        None
    })
}

fn put_u32_seq(w: &mut Writer, xs: &[u32]) {
    w.put_seq_len(xs.len());
    for &x in xs {
        w.put_u32(x);
    }
}

fn get_u32_seq(r: &mut Reader<'_>, want: usize, what: &str) -> Result<Vec<u32>, CodecError> {
    let n = r.get_seq_len(4)?;
    if n != want {
        return Err(bad(
            r,
            format!("{what} has {n} entries, topology wants {want}"),
        ));
    }
    (0..n).map(|_| r.get_u32()).collect()
}

fn put_file_ids(w: &mut Writer, xs: &[FileId]) {
    w.put_seq_len(xs.len());
    for x in xs {
        w.put_u64(x.0);
    }
}

fn get_file_ids(r: &mut Reader<'_>) -> Result<Vec<FileId>, CodecError> {
    let n = r.get_seq_len(8)?;
    (0..n).map(|_| Ok(FileId(r.get_u64()?))).collect()
}

fn put_scope(w: &mut Writer, s: Scope) {
    match s {
        Scope::User(u) => {
            w.put_u8(0);
            w.put_u32(u);
        }
        Scope::McProd => w.put_u8(1),
        Scope::Data => w.put_u8(2),
        Scope::GroupPhys => w.put_u8(3),
    }
}

fn get_scope(r: &mut Reader<'_>) -> Result<Scope, CodecError> {
    match r.get_u8()? {
        0 => Ok(Scope::User(r.get_u32()?)),
        1 => Ok(Scope::McProd),
        2 => Ok(Scope::Data),
        3 => Ok(Scope::GroupPhys),
        t => Err(bad(r, format!("unknown scope tag {t}"))),
    }
}

fn put_kind(w: &mut Writer, k: TaskKind) {
    w.put_u8(match k {
        TaskKind::UserAnalysis => 0,
        TaskKind::Production => 1,
    });
}

fn get_kind(r: &mut Reader<'_>) -> Result<TaskKind, CodecError> {
    match r.get_u8()? {
        0 => Ok(TaskKind::UserAnalysis),
        1 => Ok(TaskKind::Production),
        t => Err(bad(r, format!("unknown task kind tag {t}"))),
    }
}

fn put_io_mode(w: &mut Writer, m: IoMode) {
    w.put_u8(match m {
        IoMode::StageIn => 0,
        IoMode::DirectIo => 1,
    });
}

fn get_io_mode(r: &mut Reader<'_>) -> Result<IoMode, CodecError> {
    match r.get_u8()? {
        0 => Ok(IoMode::StageIn),
        1 => Ok(IoMode::DirectIo),
        t => Err(bad(r, format!("unknown io-mode tag {t}"))),
    }
}

fn put_activity(w: &mut Writer, a: Activity) {
    w.put_u8(match a {
        Activity::AnalysisDownload => 0,
        Activity::AnalysisUpload => 1,
        Activity::AnalysisDownloadDirectIo => 2,
        Activity::ProductionUpload => 3,
        Activity::ProductionDownload => 4,
        Activity::DataRebalancing => 5,
        Activity::TapeRecall => 6,
        Activity::DataConsolidation => 7,
    });
}

fn get_activity(r: &mut Reader<'_>) -> Result<Activity, CodecError> {
    Ok(match r.get_u8()? {
        0 => Activity::AnalysisDownload,
        1 => Activity::AnalysisUpload,
        2 => Activity::AnalysisDownloadDirectIo,
        3 => Activity::ProductionUpload,
        4 => Activity::ProductionDownload,
        5 => Activity::DataRebalancing,
        6 => Activity::TapeRecall,
        7 => Activity::DataConsolidation,
        t => return Err(bad(r, format!("unknown activity tag {t}"))),
    })
}

// ---------------------------------------------------------------------------
// Compound helpers
// ---------------------------------------------------------------------------

fn put_pending_job(w: &mut Writer, pj: &PendingJob) {
    w.put_u64(pj.pandaid);
    w.put_u32(pj.task_idx);
    put_kind(w, pj.kind);
    put_io_mode(w, pj.io_mode);
    w.put_bool(pj.doomed);
    put_file_ids(w, &pj.input_files);
    w.put_u64(pj.input_bytes);
    put_time(w, pj.creation);
    w.put_u32(pj.site.0);
    w.put_bool(pj.recorded_stagein);
    match pj.stage_source {
        None => w.put_bool(false),
        Some(rse) => {
            w.put_bool(true);
            w.put_u32(rse.0);
        }
    }
    w.put_seq_len(pj.stage_intervals.len());
    for iv in &pj.stage_intervals {
        put_time(w, iv.start);
        put_time(w, iv.end);
    }
    put_time(w, pj.staging_end);
    w.put_bool(pj.lost_input);
    w.put_bool(pj.rebrokered);
    put_time(w, pj.start);
    put_time(w, pj.exec_end);
}

fn get_pending_job(r: &mut Reader<'_>) -> Result<PendingJob, CodecError> {
    let pandaid = r.get_u64()?;
    let task_idx = r.get_u32()?;
    let kind = get_kind(r)?;
    let io_mode = get_io_mode(r)?;
    let doomed = r.get_bool()?;
    let input_files = get_file_ids(r)?;
    let input_bytes = r.get_u64()?;
    let creation = get_time(r)?;
    let site = SiteId(r.get_u32()?);
    let recorded_stagein = r.get_bool()?;
    let stage_source = if r.get_bool()? {
        Some(RseId(r.get_u32()?))
    } else {
        None
    };
    let n = r.get_seq_len(16)?;
    let mut stage_intervals = Vec::with_capacity(n);
    for _ in 0..n {
        let start = get_time(r)?;
        let end = get_time(r)?;
        stage_intervals.push(Interval::new(start, end));
    }
    let staging_end = get_time(r)?;
    let lost_input = r.get_bool()?;
    let rebrokered = r.get_bool()?;
    let start = get_time(r)?;
    let exec_end = get_time(r)?;
    Ok(PendingJob {
        pandaid,
        task_idx,
        kind,
        io_mode,
        doomed,
        input_files,
        input_bytes,
        creation,
        site,
        recorded_stagein,
        stage_source,
        stage_intervals,
        staging_end,
        lost_input,
        rebrokered,
        start,
        exec_end,
    })
}

fn put_event(w: &mut Writer, ev: &Event) {
    match ev {
        Event::TaskArrival => w.put_u8(0),
        Event::JobCreated(pj) => {
            w.put_u8(1);
            put_pending_job(w, pj);
        }
        Event::StagingDone(pj) => {
            w.put_u8(2);
            put_pending_job(w, pj);
        }
        Event::ExecDone(pj) => {
            w.put_u8(3);
            put_pending_job(w, pj);
        }
        Event::Background => w.put_u8(4),
        Event::Reaper => w.put_u8(5),
    }
}

fn get_event(r: &mut Reader<'_>) -> Result<Event, CodecError> {
    Ok(match r.get_u8()? {
        0 => Event::TaskArrival,
        1 => Event::JobCreated(Box::new(get_pending_job(r)?)),
        2 => Event::StagingDone(Box::new(get_pending_job(r)?)),
        3 => Event::ExecDone(Box::new(get_pending_job(r)?)),
        4 => Event::Background,
        5 => Event::Reaper,
        t => return Err(bad(r, format!("unknown event tag {t}"))),
    })
}

fn put_engine(w: &mut Writer, s: &TransferEngineSnapshot) {
    w.put_seq_len(s.slots.len());
    for row in &s.slots {
        w.put_seq_len(row.len());
        for &t in row {
            w.put_i64(t);
        }
    }
    w.put_u64(s.next_id);
    for word in s.jitter_rng {
        w.put_u64(word);
    }
    for word in s.fault_rng {
        w.put_u64(word);
    }
    let st = &s.stats;
    w.put_u64(st.requests);
    w.put_u64(st.delivered);
    w.put_u64(st.delivered_after_retry);
    w.put_u64(st.failed_attempts);
    w.put_u64(st.exhausted);
    w.put_u64(st.no_replica);
}

fn get_engine(r: &mut Reader<'_>) -> Result<TransferEngineSnapshot, CodecError> {
    let n = r.get_seq_len(8)?;
    let mut slots = Vec::with_capacity(n);
    for _ in 0..n {
        let k = r.get_seq_len(8)?;
        let mut row = Vec::with_capacity(k);
        for _ in 0..k {
            row.push(r.get_i64()?);
        }
        slots.push(row);
    }
    let next_id = r.get_u64()?;
    let mut jitter_rng = [0u64; 4];
    for word in &mut jitter_rng {
        *word = r.get_u64()?;
    }
    let mut fault_rng = [0u64; 4];
    for word in &mut fault_rng {
        *word = r.get_u64()?;
    }
    let stats = TransferPathStats {
        requests: r.get_u64()?,
        delivered: r.get_u64()?,
        delivered_after_retry: r.get_u64()?,
        failed_attempts: r.get_u64()?,
        exhausted: r.get_u64()?,
        no_replica: r.get_u64()?,
    };
    Ok(TransferEngineSnapshot {
        slots,
        next_id,
        jitter_rng,
        fault_rng,
        stats,
    })
}

fn put_catalog(w: &mut Writer, c: &ReplicaCatalog) {
    // Symbol table first: every string once, in dense sym order, so the
    // per-entry name fields below are plain u32 handles.
    put_symbol_table(w, c.names());
    w.put_seq_len(c.files().len());
    for f in c.files() {
        w.put_u64(f.id.0);
        w.put_u32(f.lfn.0);
        put_scope(w, f.scope);
        w.put_u64(f.size);
        w.put_u64(f.dataset.0);
        put_time(w, f.registered);
    }
    w.put_seq_len(c.datasets().len());
    for ds in c.datasets() {
        w.put_u64(ds.id.0);
        w.put_u32(ds.name.0);
        put_scope(w, ds.scope);
        w.put_u32(ds.prod_dblock.0);
        put_file_ids(w, &ds.files);
        w.put_u64(ds.total_bytes);
    }
    w.put_seq_len(c.containers().len());
    for ct in c.containers() {
        w.put_u64(ct.id.0);
        w.put_str(&ct.name.0);
        w.put_seq_len(ct.datasets.len());
        for d in &ct.datasets {
            w.put_u64(d.0);
        }
    }
    w.put_seq_len(c.replicas().len());
    for set in c.replicas() {
        w.put_seq_len(set.len());
        for rse in set {
            w.put_u32(rse.0);
        }
    }
}

fn get_catalog(r: &mut Reader<'_>) -> Result<ReplicaCatalog, CodecError> {
    let names = get_symbol_table(r)?;
    let n = r.get_seq_len(35)?;
    let mut files = Vec::with_capacity(n);
    for _ in 0..n {
        files.push(FileEntry {
            id: FileId(r.get_u64()?),
            lfn: Sym(r.get_u32()?),
            scope: get_scope(r)?,
            size: r.get_u64()?,
            dataset: DatasetId(r.get_u64()?),
            registered: get_time(r)?,
        });
    }
    let n = r.get_seq_len(40)?;
    let mut datasets = Vec::with_capacity(n);
    for _ in 0..n {
        datasets.push(DatasetEntry {
            id: DatasetId(r.get_u64()?),
            name: Sym(r.get_u32()?),
            scope: get_scope(r)?,
            prod_dblock: Sym(r.get_u32()?),
            files: get_file_ids(r)?,
            total_bytes: r.get_u64()?,
        });
    }
    let n = r.get_seq_len(24)?;
    let mut containers = Vec::with_capacity(n);
    for _ in 0..n {
        let id = ContainerId(r.get_u64()?);
        let name = DidName(r.get_str()?);
        let k = r.get_seq_len(8)?;
        let datasets = (0..k)
            .map(|_| Ok(DatasetId(r.get_u64()?)))
            .collect::<Result<Vec<_>, CodecError>>()?;
        containers.push(ContainerEntry { id, name, datasets });
    }
    let n = r.get_seq_len(8)?;
    let mut replicas = Vec::with_capacity(n);
    for _ in 0..n {
        let k = r.get_seq_len(4)?;
        let set = (0..k)
            .map(|_| Ok(RseId(r.get_u32()?)))
            .collect::<Result<Vec<_>, CodecError>>()?;
        replicas.push(set);
    }
    let off = r.offset();
    ReplicaCatalog::from_parts(names, files, datasets, containers, replicas).map_err(|e| {
        CodecError {
            offset: off,
            what: format!("catalog: {e}"),
        }
    })
}

/// Dense symbol-table image: string count, then every string in sym
/// order (index 0 is always the `UNKNOWN` sentinel a fresh table holds).
fn put_symbol_table(w: &mut Writer, t: &SymbolTable) {
    w.put_seq_len(t.len());
    for i in 0..t.len() as u32 {
        w.put_str(t.resolve(Sym(i)));
    }
}

fn get_symbol_table(r: &mut Reader<'_>) -> Result<SymbolTable, CodecError> {
    let n = r.get_seq_len(8)?;
    let mut t = SymbolTable::new();
    for i in 0..n {
        let s = r.get_str()?;
        let sym = t.intern(&s);
        if sym.0 as usize != i {
            return Err(bad(
                r,
                format!("symbol table entry {i} duplicates entry {}", sym.0),
            ));
        }
    }
    Ok(t)
}

fn put_rule(w: &mut Writer, rule: &ReplicationRule) {
    w.put_u64(rule.id.0);
    w.put_u64(rule.dataset.0);
    w.put_seq_len(rule.candidate_rses.len());
    for rse in &rule.candidate_rses {
        w.put_u32(rse.0);
    }
    w.put_u64(rule.copies as u64);
    put_time(w, rule.created);
    match rule.lifetime {
        None => w.put_bool(false),
        Some(l) => {
            w.put_bool(true);
            w.put_i64(l.as_millis());
        }
    }
}

fn get_rule(r: &mut Reader<'_>) -> Result<ReplicationRule, CodecError> {
    let id = RuleId(r.get_u64()?);
    let dataset = DatasetId(r.get_u64()?);
    let n = r.get_seq_len(4)?;
    let candidate_rses = (0..n)
        .map(|_| Ok(RseId(r.get_u32()?)))
        .collect::<Result<Vec<_>, CodecError>>()?;
    let copies = r.get_u64()? as usize;
    let created = get_time(r)?;
    let lifetime = if r.get_bool()? {
        Some(SimDuration::from_millis(r.get_i64()?))
    } else {
        None
    };
    Ok(ReplicationRule {
        id,
        dataset,
        candidate_rses,
        copies,
        created,
        lifetime,
    })
}

fn put_subject(w: &mut Writer, s: HealthSubject) {
    match s {
        HealthSubject::Site(site) => {
            w.put_u8(0);
            w.put_u32(site.0);
        }
        HealthSubject::Link { src, dst } => {
            w.put_u8(1);
            w.put_u32(src.0);
            w.put_u32(dst.0);
        }
    }
}

fn get_subject(r: &mut Reader<'_>) -> Result<HealthSubject, CodecError> {
    match r.get_u8()? {
        0 => Ok(HealthSubject::Site(SiteId(r.get_u32()?))),
        1 => Ok(HealthSubject::Link {
            src: SiteId(r.get_u32()?),
            dst: SiteId(r.get_u32()?),
        }),
        t => Err(bad(r, format!("unknown health subject tag {t}"))),
    }
}

fn put_breaker(w: &mut Writer, b: &BreakerSnapshot) {
    w.put_u8(match b.state {
        BreakerState::Closed => 0,
        BreakerState::Open => 1,
        BreakerState::HalfOpen => 2,
    });
    w.put_seq_len(b.samples.len());
    for &(t, failed) in &b.samples {
        put_time(w, t);
        w.put_bool(failed);
    }
    w.put_u32(b.consecutive_failures);
    put_time(w, b.open_until);
    w.put_u32(b.probes_granted);
    w.put_u32(b.probe_successes);
}

fn get_breaker(r: &mut Reader<'_>) -> Result<BreakerSnapshot, CodecError> {
    let state = match r.get_u8()? {
        0 => BreakerState::Closed,
        1 => BreakerState::Open,
        2 => BreakerState::HalfOpen,
        t => return Err(bad(r, format!("unknown breaker state tag {t}"))),
    };
    let n = r.get_seq_len(9)?;
    let mut samples = Vec::with_capacity(n);
    for _ in 0..n {
        let t = get_time(r)?;
        let failed = r.get_bool()?;
        samples.push((t, failed));
    }
    Ok(BreakerSnapshot {
        state,
        samples,
        consecutive_failures: r.get_u32()?,
        open_until: get_time(r)?,
        probes_granted: r.get_u32()?,
        probe_successes: r.get_u32()?,
    })
}

fn put_health(w: &mut Writer, h: &HealthSnapshot) {
    w.put_seq_len(h.sites.len());
    for b in &h.sites {
        put_breaker(w, b);
    }
    w.put_seq_len(h.links.len());
    for ((src, dst), b) in &h.links {
        w.put_u32(src.0);
        w.put_u32(dst.0);
        put_breaker(w, b);
    }
    w.put_seq_len(h.episodes.len());
    for ep in &h.episodes {
        put_subject(w, ep.subject);
        put_time(w, ep.from);
        put_time(w, ep.until);
    }
    w.put_u64(h.counters.site_refusals);
    w.put_u64(h.counters.link_refusals);
    w.put_u64(h.counters.probes_granted);
    w.put_u64(h.counters.trips);
}

fn get_health(r: &mut Reader<'_>) -> Result<HealthSnapshot, CodecError> {
    let n = r.get_seq_len(26)?;
    let mut sites = Vec::with_capacity(n);
    for _ in 0..n {
        sites.push(get_breaker(r)?);
    }
    let n = r.get_seq_len(34)?;
    let mut links = Vec::with_capacity(n);
    for _ in 0..n {
        let src = SiteId(r.get_u32()?);
        let dst = SiteId(r.get_u32()?);
        links.push(((src, dst), get_breaker(r)?));
    }
    let n = r.get_seq_len(17)?;
    let mut episodes = Vec::with_capacity(n);
    for _ in 0..n {
        let subject = get_subject(r)?;
        let from = get_time(r)?;
        let until = get_time(r)?;
        episodes.push(OpenEpisode {
            subject,
            from,
            until,
        });
    }
    let counters = HealthCounters {
        site_refusals: r.get_u64()?,
        link_refusals: r.get_u64()?,
        probes_granted: r.get_u64()?,
        trips: r.get_u64()?,
    };
    Ok(HealthSnapshot {
        sites,
        links,
        episodes,
        counters,
    })
}

fn put_task_ctx(w: &mut Writer, t: &TaskCtx) {
    w.put_u64(t.id.0);
    put_kind(w, t.kind);
    w.put_bool(t.doomed);
    w.put_u32(t.n_jobs);
    w.put_u32(t.progress.n_finished);
    w.put_u32(t.progress.n_failed);
}

fn get_task_ctx(r: &mut Reader<'_>) -> Result<TaskCtx, CodecError> {
    Ok(TaskCtx {
        id: TaskId(r.get_u64()?),
        kind: get_kind(r)?,
        doomed: r.get_bool()?,
        n_jobs: r.get_u32()?,
        progress: TaskProgress {
            n_finished: r.get_u32()?,
            n_failed: r.get_u32()?,
        },
    })
}

fn put_job(w: &mut Writer, j: &Job) {
    w.put_u64(j.id.0);
    w.put_u64(j.task.0);
    put_kind(w, j.kind);
    w.put_u32(j.computing_site.0);
    put_time(w, j.creationtime);
    put_time(w, j.starttime);
    put_time(w, j.endtime);
    put_file_ids(w, &j.input_files);
    put_file_ids(w, &j.output_files);
    w.put_u64(j.ninputfilebytes);
    w.put_u64(j.noutputfilebytes);
    put_io_mode(w, j.io_mode);
    w.put_u8(match j.status {
        JobStatus::Finished => 0,
        JobStatus::Failed => 1,
    });
    w.put_u8(match j.task_status {
        TaskStatus::Done => 0,
        TaskStatus::Failed => 1,
    });
    match j.error_code {
        None => w.put_bool(false),
        Some(c) => {
            w.put_bool(true);
            w.put_u32(c);
        }
    }
}

fn get_job(r: &mut Reader<'_>) -> Result<Job, CodecError> {
    Ok(Job {
        id: JobId(r.get_u64()?),
        task: TaskId(r.get_u64()?),
        kind: get_kind(r)?,
        computing_site: SiteId(r.get_u32()?),
        creationtime: get_time(r)?,
        starttime: get_time(r)?,
        endtime: get_time(r)?,
        input_files: get_file_ids(r)?,
        output_files: get_file_ids(r)?,
        ninputfilebytes: r.get_u64()?,
        noutputfilebytes: r.get_u64()?,
        io_mode: get_io_mode(r)?,
        status: match r.get_u8()? {
            0 => JobStatus::Finished,
            1 => JobStatus::Failed,
            t => return Err(bad(r, format!("unknown job status tag {t}"))),
        },
        task_status: match r.get_u8()? {
            0 => TaskStatus::Done,
            1 => TaskStatus::Failed,
            t => return Err(bad(r, format!("unknown task status tag {t}"))),
        },
        error_code: if r.get_bool()? {
            Some(r.get_u32()?)
        } else {
            None
        },
    })
}

fn put_transfer_event(w: &mut Writer, ev: &TransferEvent) {
    w.put_u64(ev.id.0);
    w.put_u64(ev.file.0);
    w.put_u32(ev.lfn.0);
    w.put_u32(ev.dataset.0);
    w.put_u32(ev.proddblock.0);
    put_scope(w, ev.scope);
    w.put_u64(ev.file_size);
    w.put_u32(ev.source_site.0);
    w.put_u32(ev.destination_site.0);
    put_time(w, ev.queued);
    put_time(w, ev.starttime);
    put_time(w, ev.endtime);
    put_activity(w, ev.activity);
    w.put_u32(ev.attempt);
    w.put_bool(ev.succeeded);
    put_opt_u64(w, ev.caused_by_pandaid);
    put_opt_u64(w, ev.jeditaskid);
}

fn get_transfer_event(r: &mut Reader<'_>) -> Result<TransferEvent, CodecError> {
    Ok(TransferEvent {
        id: TransferId(r.get_u64()?),
        file: FileId(r.get_u64()?),
        lfn: Sym(r.get_u32()?),
        dataset: Sym(r.get_u32()?),
        proddblock: Sym(r.get_u32()?),
        scope: get_scope(r)?,
        file_size: r.get_u64()?,
        source_site: SiteId(r.get_u32()?),
        destination_site: SiteId(r.get_u32()?),
        queued: get_time(r)?,
        starttime: get_time(r)?,
        endtime: get_time(r)?,
        activity: get_activity(r)?,
        attempt: r.get_u32()?,
        succeeded: r.get_bool()?,
        caused_by_pandaid: get_opt_u64(r)?,
        jeditaskid: get_opt_u64(r)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver;

    fn tiny() -> ScenarioConfig {
        ScenarioConfig {
            duration: SimDuration::from_hours(6),
            initial_datasets: 40,
            ..ScenarioConfig::small()
        }
    }

    /// Collect every snapshot a checkpointed run emits.
    fn checkpoints(config: &ScenarioConfig, every: SimDuration) -> Vec<(SimTime, Vec<u8>)> {
        let mut out = Vec::new();
        driver::run_checkpointed(config, every, &mut |t, bytes| {
            out.push((t, bytes.to_vec()));
            Ok(())
        })
        .expect("collecting sink cannot fail");
        out
    }

    fn assert_same_campaign(a: &driver::Campaign, b: &driver::Campaign) {
        assert_eq!(a.store.counts(), b.store.counts());
        assert_eq!(a.store.jobs.len(), b.store.jobs.len());
        for (x, y) in a.store.jobs.iter().zip(&b.store.jobs) {
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
        for (x, y) in a.store.files.iter().zip(&b.store.files) {
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
        for (x, y) in a.store.transfers.iter().zip(&b.store.transfers) {
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
        assert_eq!(a.path_stats, b.path_stats);
        match (&a.health, &b.health) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                assert_eq!(x.episodes, y.episodes);
                assert_eq!(x.counters, y.counters);
            }
            _ => panic!("health summaries disagree on being armed"),
        }
    }

    #[test]
    fn checkpointing_does_not_perturb_the_campaign() {
        let config = tiny();
        let base = driver::run(&config);
        let checkpointed =
            driver::run_checkpointed(&config, SimDuration::from_hours(1), &mut |_, _| Ok(()))
                .expect("no-op sink");
        assert_same_campaign(&base, &checkpointed);
    }

    #[test]
    fn resume_from_every_checkpoint_is_byte_identical() {
        let config = tiny();
        let base = driver::run(&config);
        let cps = checkpoints(&config, SimDuration::from_hours(2));
        assert!(cps.len() >= 2, "only {} checkpoints", cps.len());
        for (t, bytes) in &cps {
            let resumed = driver::resume_checkpointed(&config, bytes, None, &mut |_, _| Ok(()))
                .unwrap_or_else(|e| panic!("resume from {t:?} failed: {e}"));
            assert_same_campaign(&base, &resumed);
        }
    }

    #[test]
    fn resume_is_byte_identical_under_faults_and_adaptive_exclusion() {
        for config in [
            ScenarioConfig {
                duration: SimDuration::from_hours(6),
                ..ScenarioConfig::small_faulty()
            },
            ScenarioConfig {
                duration: SimDuration::from_hours(6),
                ..ScenarioConfig::faulty_adaptive()
            },
        ] {
            let base = driver::run(&config);
            let cps = checkpoints(&config, SimDuration::from_hours(2));
            assert!(!cps.is_empty());
            let (_, bytes) = &cps[cps.len() / 2];
            let resumed =
                driver::resume_checkpointed(&config, bytes, None, &mut |_, _| Ok(())).unwrap();
            assert_same_campaign(&base, &resumed);
        }
    }

    #[test]
    fn snapshot_encode_decode_encode_is_lossless() {
        let config = tiny();
        let cps = checkpoints(&config, SimDuration::from_hours(2));
        let (_, bytes) = cps.last().expect("at least one checkpoint");
        let d = decode(&config, bytes).expect("decode");
        assert_eq!(&encode(&d), bytes, "re-encode drifted");
    }

    #[test]
    fn truncated_or_corrupt_snapshot_is_an_error_not_a_panic() {
        let config = tiny();
        let cps = checkpoints(&config, SimDuration::from_hours(2));
        let (_, bytes) = cps.last().unwrap();
        // Truncation at a few depths.
        for cut in [0, 1, 4, bytes.len() / 2, bytes.len() - 1] {
            let err = decode(&config, &bytes[..cut])
                .err()
                .expect("truncated must fail");
            assert!(err.contains("byte"), "no offset in: {err}");
        }
        // Unknown future layout version.
        let mut future = bytes.clone();
        future[0] = 99;
        let err = decode(&config, &future).err().unwrap();
        assert!(err.contains("version 99"), "bad message: {err}");
        assert!(err.contains("supported 3"), "bad message: {err}");
    }

    #[test]
    fn snapshot_under_wrong_config_is_rejected() {
        let config = tiny();
        let cps = checkpoints(&config, SimDuration::from_hours(2));
        let (_, bytes) = cps.last().unwrap();
        let other = ScenarioConfig { seed: 43, ..tiny() };
        let err = decode(&other, bytes).err().unwrap();
        assert!(err.contains("fingerprint"), "bad message: {err}");
    }

    #[test]
    fn resume_under_divergent_behavior_knob_is_rejected() {
        // The historical hole: fault rates and breaker settings were not
        // part of the fingerprint, so a resume under silently different
        // tuning replayed divergent state. Now every behavior knob counts.
        let config = ScenarioConfig {
            duration: SimDuration::from_hours(6),
            ..ScenarioConfig::small_faulty()
        };
        let cps = checkpoints(&config, SimDuration::from_hours(2));
        let (_, bytes) = cps.last().unwrap();

        let mut hotter = config.clone();
        hotter.faults.p_attempt_failure += 0.05;
        let err = decode(&hotter, bytes).err().unwrap();
        assert!(err.contains("behavior fingerprint"), "bad message: {err}");
        assert!(
            err.contains("fork"),
            "should point at the escape hatch: {err}"
        );

        let mut armed = config.clone();
        armed.health = ScenarioConfig::faulty_adaptive().health;
        assert!(armed.health.enabled);
        let err = decode(&armed, bytes).err().unwrap();
        assert!(err.contains("behavior fingerprint"), "bad message: {err}");
    }

    #[test]
    fn fork_accepts_divergent_behavior_knobs_but_not_structural_ones() {
        let config = ScenarioConfig {
            duration: SimDuration::from_hours(6),
            ..ScenarioConfig::small_faulty()
        };
        let cps = checkpoints(&config, SimDuration::from_hours(2));
        let (t, bytes) = cps.last().unwrap();

        // Fault-rate fork: accepted, resumes at the snapshot time.
        let mut hotter = config.clone();
        hotter.faults.p_attempt_failure += 0.05;
        let d = decode_forked(&hotter, bytes).expect("fault-rate fork");
        // The snapshot clock is the last event dispatched before the
        // checkpoint boundary `t` (the queue is snapshotted intact).
        assert!(d.queue.now() <= *t, "{:?} > {t:?}", d.queue.now());

        // Arming the health loop across the fork: fresh breakers.
        let mut armed = config.clone();
        armed.health = ScenarioConfig::faulty_adaptive().health;
        let d = decode_forked(&armed, bytes).expect("arming fork");
        let snap = d.health.as_ref().expect("fork armed the loop").snapshot();
        assert!(snap.episodes.is_empty(), "fresh breakers carry no episodes");
        assert_eq!(snap.counters.trips, 0);

        // Disarming across the fork: breaker state dropped.
        let adaptive = ScenarioConfig {
            duration: SimDuration::from_hours(6),
            ..ScenarioConfig::faulty_adaptive()
        };
        let acps = checkpoints(&adaptive, SimDuration::from_hours(2));
        let (_, abytes) = acps.last().unwrap();
        let mut disarmed = adaptive.clone();
        disarmed.health.enabled = false;
        let d = decode_forked(&disarmed, abytes).expect("disarming fork");
        assert!(d.health.is_none());

        // Seed and topology stay load-bearing even for a fork.
        let err = decode_forked(
            &ScenarioConfig {
                seed: 43,
                ..config.clone()
            },
            bytes,
        )
        .err()
        .unwrap();
        assert!(err.contains("structural"), "bad message: {err}");
    }

    #[test]
    fn fork_with_identical_config_is_byte_identical_to_uninterrupted_run() {
        // Degenerate fork (fork config == base config) must collapse to a
        // plain resume: prefix + continuation is the uninterrupted run.
        for config in [
            tiny(),
            ScenarioConfig {
                duration: SimDuration::from_hours(6),
                ..ScenarioConfig::faulty_adaptive()
            },
        ] {
            let base = driver::run(&config);
            let forked = driver::run_forked(
                &config,
                &config,
                SimTime::EPOCH + SimDuration::from_hours(3),
            )
            .expect("degenerate fork");
            assert_same_campaign(&base, &forked);
        }
    }

    #[test]
    fn prefix_snapshot_matches_the_checkpoint_at_the_same_boundary() {
        let config = tiny();
        let every = SimDuration::from_hours(2);
        let cps = checkpoints(&config, every);
        for (t, bytes) in &cps {
            assert_eq!(
                &driver::prefix_snapshot(&config, *t),
                bytes,
                "prefix snapshot at {t:?} drifted from the checkpointed emission"
            );
        }
    }
}
