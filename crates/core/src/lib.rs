//! # dmsa-core
//!
//! The paper's primary contribution: fine-grained matching of PanDA jobs to
//! Rucio file-transfer events (§4), plus evaluation against simulator
//! ground truth.
//!
//! ## The matching problem
//!
//! Transfer records do not carry job identifiers. Algorithm 1 bridges the
//! gap through PanDA's per-job **file table**: for each job `J_j`, the file
//! rows sharing its (`pandaid`, `jeditaskid`) give a set of file attribute
//! keys (`lfn`, `dataset`, `proddblock`, `scope`, `file_size`); transfers
//! joining on those keys (and on `jeditaskid`) become candidates; a final
//! filter on time, byte totals, and site consistency yields the match.
//!
//! ## Strategies
//!
//! * [`MatchMethod::Exact`] — Algorithm 1 in full: candidate transfers must
//!   start before the job's end time, their per-direction size sums must
//!   equal the job's `ninputfilebytes` / `noutputfilebytes`, and the
//!   transfer endpoint must equal the job's computing site.
//! * [`MatchMethod::Rm1`] — drops the byte-sum check (§4.3), recovering
//!   jobs with missing sibling transfer records or inconsistent job byte
//!   accounting.
//! * [`MatchMethod::Rm2`] — additionally accepts transfers whose relevant
//!   endpoint is recorded as `UNKNOWN` or an invalid name, and supports
//!   *site inference* for those matches ([`infer`]).
//!
//! ## Implementations
//!
//! Four interchangeable engines produce **identical** match sets
//! (property-tested): [`matcher::NaiveMatcher`] (reference, quadratic),
//! [`index::IndexedMatcher`] (sequential prepared index, built per call),
//! [`parallel::ParallelMatcher`] (rayon over jobs — the "parallelization
//! will be especially valuable" future work of §5.5), and
//! [`prepared::PreparedMatcher`] over a [`prepared::PreparedStore`] — a
//! CSR-style flat join index with packed join-key fingerprints, built once
//! and shared across all three methods and across streaming windows. Two
//! extensions go beyond the paper: [`scored::ScoredMatcher`] replaces the
//! binary filters with a composite evidence score and a tunable
//! precision/recall threshold, and [`windowed::WindowedMatcher`] streams a
//! long observation period through overlapping windows per §4.2's
//! pre-selection rule.

pub mod eval;
pub mod fx;
pub mod index;
pub mod infer;
pub mod matcher;
pub mod matchset;
pub mod method;
pub mod parallel;
pub mod prepared;
pub mod scored;
pub mod shared;
pub mod windowed;

pub use eval::{evaluate, MatchEvaluation};
pub use index::IndexedMatcher;
pub use matcher::NaiveMatcher;
pub use matchset::{JobTransferClass, MatchSet, MatchedJob};
pub use method::MatchMethod;
pub use parallel::ParallelMatcher;
pub use prepared::{PreparedMatcher, PreparedStore};
pub use scored::{ScoreParams, ScoredMatcher, ScoredPair};
pub use shared::{SharedPrepared, StoreSwap};
pub use windowed::WindowedMatcher;
