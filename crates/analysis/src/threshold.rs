//! Job counts by status combination vs transfer-time threshold (Fig 9).
//!
//! The paper splits exactly-matched jobs into four (job, task) status
//! combinations and, sweeping a threshold `T` on the transfer-time
//! percentage, counts jobs at or below each `T`. Two findings the benches
//! assert: ~80 % of matched jobs succeed overall, and the few jobs above
//! `T = 75 %` are predominantly failed — the correlation between staging
//! pathologies and errors.

use crate::overlap::JobTransferOverlap;
use serde::{Deserialize, Serialize};

/// The paper's four status combinations, in its legend order.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum StatusCombo {
    /// Job succeeded within a successful task.
    JobOkTaskOk,
    /// Job failed within a successful task.
    JobFailTaskOk,
    /// Job succeeded within a failed task.
    JobOkTaskFail,
    /// Job failed within a failed task.
    JobFailTaskFail,
}

impl StatusCombo {
    /// All combos in legend order.
    pub const ALL: [StatusCombo; 4] = [
        StatusCombo::JobOkTaskOk,
        StatusCombo::JobFailTaskOk,
        StatusCombo::JobOkTaskFail,
        StatusCombo::JobFailTaskFail,
    ];

    /// Classify one overlap record.
    pub fn of(o: &JobTransferOverlap) -> StatusCombo {
        match (o.job_succeeded, o.task_succeeded) {
            (true, true) => StatusCombo::JobOkTaskOk,
            (false, true) => StatusCombo::JobFailTaskOk,
            (true, false) => StatusCombo::JobOkTaskFail,
            (false, false) => StatusCombo::JobFailTaskFail,
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            StatusCombo::JobOkTaskOk => "job D / task D",
            StatusCombo::JobFailTaskOk => "job F / task D",
            StatusCombo::JobOkTaskFail => "job D / task F",
            StatusCombo::JobFailTaskFail => "job F / task F",
        }
    }
}

/// Cumulative counts at one threshold value.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ThresholdPoint {
    /// Threshold `T` in percent.
    pub t_percent: f64,
    /// Jobs with transfer-time percentage ≤ `T`, per combo (legend order).
    pub counts: [usize; 4],
}

impl ThresholdPoint {
    /// Total jobs at or below this threshold.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }
}

/// Sweep thresholds over the overlaps (cumulative counts, as in Fig 9).
pub fn threshold_sweep(overlaps: &[JobTransferOverlap], thresholds: &[f64]) -> Vec<ThresholdPoint> {
    thresholds
        .iter()
        .map(|&t| {
            let mut counts = [0usize; 4];
            for o in overlaps {
                if o.percent <= t {
                    let combo = StatusCombo::of(o);
                    let idx = StatusCombo::ALL
                        .iter()
                        .position(|&c| c == combo)
                        .expect("combo in ALL");
                    counts[idx] += 1;
                }
            }
            ThresholdPoint {
                t_percent: t,
                counts,
            }
        })
        .collect()
}

/// Jobs strictly above a threshold, per combo — the paper's "72 jobs above
/// 75 %, mostly failed".
pub fn above_threshold(overlaps: &[JobTransferOverlap], t: f64) -> [usize; 4] {
    let mut counts = [0usize; 4];
    for o in overlaps {
        if o.percent > t {
            let idx = StatusCombo::ALL
                .iter()
                .position(|&c| c == StatusCombo::of(o))
                .expect("combo in ALL");
            counts[idx] += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(percent: f64, job_ok: bool, task_ok: bool) -> JobTransferOverlap {
        JobTransferOverlap {
            job_idx: 0,
            pandaid: 0,
            queue_secs: 100.0,
            transfer_secs: percent,
            percent,
            transferred_bytes: 0,
            all_local: true,
            all_remote: false,
            spans_wall: false,
            job_succeeded: job_ok,
            task_succeeded: task_ok,
        }
    }

    #[test]
    fn combo_classification() {
        assert_eq!(
            StatusCombo::of(&o(0.0, true, true)),
            StatusCombo::JobOkTaskOk
        );
        assert_eq!(
            StatusCombo::of(&o(0.0, false, true)),
            StatusCombo::JobFailTaskOk
        );
        assert_eq!(
            StatusCombo::of(&o(0.0, true, false)),
            StatusCombo::JobOkTaskFail
        );
        assert_eq!(
            StatusCombo::of(&o(0.0, false, false)),
            StatusCombo::JobFailTaskFail
        );
    }

    #[test]
    fn sweep_is_cumulative() {
        let os = vec![
            o(0.5, true, true),
            o(1.5, true, true),
            o(50.0, false, false),
        ];
        let pts = threshold_sweep(&os, &[1.0, 2.0, 100.0]);
        assert_eq!(pts[0].counts[0], 1); // only the 0.5 % job
        assert_eq!(pts[1].counts[0], 2); // plus the 1.5 % job
        assert_eq!(pts[2].total(), 3);
        assert!(pts.windows(2).all(|w| w[0].total() <= w[1].total()));
    }

    #[test]
    fn above_threshold_counts_extremes() {
        let os = vec![
            o(80.0, false, false),
            o(90.0, false, true),
            o(99.0, true, true),
            o(10.0, true, true),
        ];
        let above = above_threshold(&os, 75.0);
        assert_eq!(above.iter().sum::<usize>(), 3);
        // Failed jobs dominate the extreme bucket.
        let failed = above[1] + above[3];
        assert_eq!(failed, 2);
    }
}
