//! # dmsa-bench
//!
//! The benchmark/repro harness. Two consumers:
//!
//! * the **`repro` binary** (`cargo run -p dmsa-bench --bin repro`), which
//!   regenerates every table and figure of the paper's evaluation section
//!   and prints them in the paper's layout — see `EXPERIMENTS.md` for the
//!   paper-vs-measured record;
//! * the **criterion benches** (`cargo bench -p dmsa-bench`), one target
//!   per table/figure plus ablations (matcher engines, corruption sweep).
//!
//! [`ReproContext`] bundles the pieces every experiment needs: one 8-day
//! campaign, the three match sets, and the per-job overlap records.

use dmsa_analysis::overlap::{all_overlaps, JobTransferOverlap};
use dmsa_core::matcher::Matcher;
use dmsa_core::{MatchMethod, MatchSet, ParallelMatcher};
use dmsa_scenario::{Campaign, ScenarioConfig};

/// Everything the §5 experiments share.
pub struct ReproContext {
    /// The 8-day campaign.
    pub campaign: Campaign,
    /// Exact (Algorithm 1) match set.
    pub exact: MatchSet,
    /// RM1 match set.
    pub rm1: MatchSet,
    /// RM2 match set.
    pub rm2: MatchSet,
    /// Per-job overlaps for the exact set (most figures use these).
    pub overlaps_exact: Vec<JobTransferOverlap>,
    /// Per-job overlaps for the RM2 set (Fig 12 needs relaxed matches).
    pub overlaps_rm2: Vec<JobTransferOverlap>,
}

impl ReproContext {
    /// Run the 8-day campaign at `scale` and match with all strategies.
    pub fn build(scale: f64, seed: u64) -> Self {
        let config = ScenarioConfig {
            seed,
            ..ScenarioConfig::paper_8day(scale)
        };
        Self::from_config(&config)
    }

    /// Same, from an explicit config.
    pub fn from_config(config: &ScenarioConfig) -> Self {
        let campaign = dmsa_scenario::run(config);
        let m = |method| ParallelMatcher.match_jobs(&campaign.store, campaign.window, method);
        let exact = m(MatchMethod::Exact);
        let rm1 = m(MatchMethod::Rm1);
        let rm2 = m(MatchMethod::Rm2);
        let overlaps_exact = all_overlaps(&campaign.store, &exact);
        let overlaps_rm2 = all_overlaps(&campaign.store, &rm2);
        ReproContext {
            campaign,
            exact,
            rm1,
            rm2,
            overlaps_exact,
            overlaps_rm2,
        }
    }

    /// The match set for a method.
    pub fn set(&self, method: MatchMethod) -> &MatchSet {
        match method {
            MatchMethod::Exact => &self.exact,
            MatchMethod::Rm1 => &self.rm1,
            MatchMethod::Rm2 => &self.rm2,
        }
    }
}

/// Human-readable formatting used by the repro binary's tables.
pub mod fmt {
    /// Format bytes with a binary-decimal mix matching the paper (PB/TB/GB).
    pub fn bytes(b: u64) -> String {
        let b = b as f64;
        const UNITS: [(&str, f64); 5] = [
            ("PB", 1e15),
            ("TB", 1e12),
            ("GB", 1e9),
            ("MB", 1e6),
            ("KB", 1e3),
        ];
        for (name, scale) in UNITS {
            if b >= scale {
                return format!("{:.2} {name}", b / scale);
            }
        }
        format!("{b:.0} B")
    }

    /// Percentage with two decimals.
    pub fn pct(num: usize, den: usize) -> String {
        if den == 0 {
            "n/a".to_string()
        } else {
            format!("{:.2}%", 100.0 * num as f64 / den as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_bytes_units() {
        assert_eq!(fmt::bytes(0), "0 B");
        assert_eq!(fmt::bytes(1_500), "1.50 KB");
        assert_eq!(fmt::bytes(2_000_000_000), "2.00 GB");
        assert_eq!(fmt::bytes(957_980_000_000_000_000), "957.98 PB");
    }

    #[test]
    fn fmt_pct() {
        assert_eq!(fmt::pct(1, 52), "1.92%");
        assert_eq!(fmt::pct(0, 0), "n/a");
    }

    #[test]
    fn context_builds_and_is_monotone() {
        let ctx = ReproContext::from_config(&ScenarioConfig::small());
        assert!(ctx.rm1.contains(&ctx.exact));
        assert!(ctx.rm2.contains(&ctx.rm1));
        assert_eq!(ctx.overlaps_exact.len(), ctx.exact.n_matched_jobs());
    }
}
