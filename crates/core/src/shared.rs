//! Shared, swappable prepared stores for long-lived services.
//!
//! A `dmsa serve` process answers queries from many threads over one
//! immutable [`PreparedStore`] and must be able to *replace* that store
//! atomically when a new export lands (hot reload) without interrupting
//! requests already in flight. Two pieces make that safe:
//!
//! * [`SharedPrepared`] — an owning handle that keeps a [`MetaStore`]
//!   alive on the heap and a [`PreparedStore`] built over it in one
//!   refcounted unit, so the index can be shared across threads without
//!   a borrow tying it to a stack frame.
//! * [`StoreSwap`] — a generation-counted atomic slot. Readers
//!   [`StoreSwap::load`] a refcounted handle (lock held only for the
//!   clone), in-flight work keeps whatever generation it loaded, and a
//!   [`StoreSwap::swap`] publishes a replacement without ever making a
//!   reader observe a half-installed store.
//!
//! The old generation is freed when its last in-flight reader drops its
//! handle — exactly the teardown discipline a rolling reload needs.

use crate::prepared::PreparedStore;
use dmsa_metastore::MetaStore;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A heap-owned metadata store plus the prepared index built over it,
/// sharable across threads as one unit.
///
/// [`PreparedStore`] borrows the store it indexes; for a long-lived
/// service that borrow must not be tied to a caller's stack frame. The
/// handle pins the [`MetaStore`] behind an `Arc` (its heap address never
/// moves and nothing can mutate it — the only `Arc` clone lives here,
/// privately) and stores the index alongside. The index's internal
/// `'static` annotation is a *private* artifact of that construction:
/// every public accessor re-ties lifetimes to `&self`, so references
/// into the store can never outlive the handle.
pub struct SharedPrepared {
    /// Keeps the indexed store alive; declared before `prepared` only
    /// for readability — drop order is irrelevant because `PreparedStore`
    /// has no `Drop` impl that dereferences the store.
    store: Arc<MetaStore>,
    prepared: PreparedStore<'static>,
}

impl SharedPrepared {
    /// Take ownership of a store and build the prepared index over it.
    pub fn build(store: MetaStore) -> SharedPrepared {
        let store = Arc::new(store);
        // SAFETY: `prepared` borrows the `MetaStore` behind `store`'s
        // heap allocation, which is stable for the lifetime of this
        // struct (the Arc is private, never handed out, and dropped
        // together with `prepared`). No `&mut MetaStore` can exist (no
        // public access to the Arc), and no public API returns the
        // `'static` lifetime — see `store()`/`prepared()`.
        let pinned: &'static MetaStore = unsafe { &*Arc::as_ptr(&store) };
        let prepared = PreparedStore::build(pinned);
        SharedPrepared { store, prepared }
    }

    /// The indexed store, borrowed for as long as the handle lives.
    pub fn store(&self) -> &MetaStore {
        &self.store
    }

    /// The prepared index. The returned reference's lifetime parameter is
    /// shortened to the borrow of `self` (covariant coercion), so nothing
    /// `'static` escapes.
    pub fn prepared<'s>(&'s self) -> &'s PreparedStore<'s> {
        &self.prepared
    }
}

// SAFETY: the handle is a read-only view over immutable data; MetaStore
// and PreparedStore are Send + Sync by construction (plain owned vectors,
// no interior mutability beyond PreparedStore's thread-local scratch).
unsafe impl Send for SharedPrepared {}
unsafe impl Sync for SharedPrepared {}

/// A generation-counted atomic slot holding an `Arc<T>`.
///
/// `load` clones the current handle (the lock is held only for the
/// refcount bump); `swap` installs a replacement and returns the old one.
/// Readers that loaded generation *n* keep using it for the rest of
/// their request even while generation *n+1* serves new arrivals — the
/// exact semantics hot reload needs: a failed reload simply never calls
/// `swap`, and the old generation keeps serving.
pub struct StoreSwap<T> {
    slot: Mutex<Arc<T>>,
    generation: AtomicU64,
}

impl<T> StoreSwap<T> {
    /// Wrap an initial value as generation 1.
    pub fn new(value: T) -> StoreSwap<T> {
        StoreSwap {
            slot: Mutex::new(Arc::new(value)),
            generation: AtomicU64::new(1),
        }
    }

    /// The current generation's handle plus its generation number,
    /// consistent with each other (taken under one lock).
    pub fn load(&self) -> (Arc<T>, u64) {
        let guard = self.slot.lock().expect("store slot poisoned");
        (Arc::clone(&guard), self.generation.load(Ordering::Acquire))
    }

    /// Install `value` as the next generation; returns the displaced
    /// handle (which in-flight readers may still hold) and the new
    /// generation number.
    pub fn swap(&self, value: T) -> (Arc<T>, u64) {
        let mut guard = self.slot.lock().expect("store slot poisoned");
        let old = std::mem::replace(&mut *guard, Arc::new(value));
        let gen = self.generation.fetch_add(1, Ordering::AcqRel) + 1;
        (old, gen)
    }

    /// The current generation number (1-based; bumped by every swap).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn shared_prepared_survives_moves_and_threads() {
        let shared = Arc::new(SharedPrepared::build(MetaStore::default()));
        // Move the Arc across a thread boundary and query from there.
        let clone = Arc::clone(&shared);
        std::thread::spawn(move || {
            let (jobs, files, transfers, _) = clone.store().counts();
            assert_eq!((jobs, files, transfers), (0, 0, 0));
            assert!(clone.prepared().file_rows(42).is_empty());
        })
        .join()
        .unwrap();
        assert!(shared.prepared().task_pool(7).is_empty());
    }

    #[test]
    fn swap_bumps_generation_and_old_readers_keep_their_handle() {
        let swap = StoreSwap::new(String::from("gen-1"));
        let (first, g1) = swap.load();
        assert_eq!(g1, 1);
        assert_eq!(*first, "gen-1");

        let (displaced, g2) = swap.swap(String::from("gen-2"));
        assert_eq!(g2, 2);
        assert_eq!(*displaced, "gen-1");
        // The old handle is still alive and readable (in-flight reader).
        assert_eq!(*first, "gen-1");
        let (now, g) = swap.load();
        assert_eq!((now.as_str(), g), ("gen-2", 2));
    }

    #[test]
    fn old_generation_is_freed_when_the_last_reader_drops() {
        struct Tracked(Arc<AtomicUsize>);
        impl Drop for Tracked {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let swap = StoreSwap::new(Tracked(Arc::clone(&drops)));
        let (reader, _) = swap.load();
        let (displaced, _) = swap.swap(Tracked(Arc::clone(&drops)));
        drop(displaced);
        assert_eq!(drops.load(Ordering::SeqCst), 0, "reader still holds gen-1");
        drop(reader);
        assert_eq!(drops.load(Ordering::SeqCst), 1, "last handle frees gen-1");
    }

    #[test]
    fn concurrent_loads_and_swaps_never_tear() {
        let swap = Arc::new(StoreSwap::new(0u64));
        let stop = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let swap = Arc::clone(&swap);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                while stop.load(Ordering::Relaxed) == 0 {
                    let (v, g) = swap.load();
                    // The value was installed at generation v+1 (new(0) is
                    // gen 1); a torn read would break this relation.
                    assert!(g >= *v + 1, "value {v} visible before its swap");
                }
            }));
        }
        for i in 1..=200u64 {
            let (_, g) = swap.swap(i);
            assert_eq!(g, i + 1);
        }
        stop.store(1, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(swap.generation(), 201);
    }
}
