//! Top-N queuing-time breakdowns (Fig 5 and Fig 6).
//!
//! The paper plots, for the 40 longest-queuing matched jobs whose file
//! transfers consumed at least 10 % of the queue, the stacked
//! queue/transfer breakdown plus the total transferred size — separately
//! for jobs with only local transfers (Fig 5) and only remote transfers
//! (Fig 6). The headline findings this module lets benches verify:
//! extreme local cases queue far longer than remote ones, and failed jobs
//! cluster at high transfer-time percentages.

use crate::overlap::JobTransferOverlap;
use serde::{Deserialize, Serialize};

/// Which population a figure selects.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Locality {
    /// Jobs whose matched transfers are all local (Fig 5).
    LocalOnly,
    /// Jobs whose matched transfers are all remote (Fig 6).
    RemoteOnly,
}

/// One bar of the figure.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TopJobRow {
    /// `pandaid` (the paper labels bars with these).
    pub pandaid: u64,
    /// Queuing time, seconds.
    pub queue_secs: f64,
    /// File-transfer time within the queue, seconds.
    pub transfer_secs: f64,
    /// Transfer-time percentage of the queue.
    pub percent: f64,
    /// Total transferred bytes (the secondary axis).
    pub transferred_bytes: u64,
    /// Job status letter ('D'/'F').
    pub job_status: char,
    /// Task status letter ('D'/'F').
    pub task_status: char,
}

/// Select the top-`n` jobs by queuing time among those with
/// `percent >= min_percent` and the requested locality.
pub fn top_jobs(
    overlaps: &[JobTransferOverlap],
    locality: Locality,
    min_percent: f64,
    n: usize,
) -> Vec<TopJobRow> {
    let mut rows: Vec<TopJobRow> = overlaps
        .iter()
        .filter(|o| o.percent >= min_percent)
        .filter(|o| match locality {
            Locality::LocalOnly => o.all_local,
            Locality::RemoteOnly => o.all_remote,
        })
        .map(|o| TopJobRow {
            pandaid: o.pandaid,
            queue_secs: o.queue_secs,
            transfer_secs: o.transfer_secs,
            percent: o.percent,
            transferred_bytes: o.transferred_bytes,
            job_status: if o.job_succeeded { 'D' } else { 'F' },
            task_status: if o.task_succeeded { 'D' } else { 'F' },
        })
        .collect();
    rows.sort_by(|a, b| {
        b.queue_secs
            .total_cmp(&a.queue_secs)
            .then(a.pandaid.cmp(&b.pandaid))
    });
    rows.truncate(n);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn overlap(
        pandaid: u64,
        queue: f64,
        transfer: f64,
        local: bool,
        ok: bool,
    ) -> JobTransferOverlap {
        JobTransferOverlap {
            job_idx: pandaid as u32,
            pandaid,
            queue_secs: queue,
            transfer_secs: transfer,
            percent: 100.0 * transfer / queue,
            transferred_bytes: 1_000,
            all_local: local,
            all_remote: !local,
            spans_wall: false,
            job_succeeded: ok,
            task_succeeded: ok,
        }
    }

    #[test]
    fn filters_by_percent_and_locality() {
        let os = vec![
            overlap(1, 100.0, 50.0, true, true),   // local, 50 %
            overlap(2, 100.0, 5.0, true, true),    // local, 5 % -> excluded
            overlap(3, 100.0, 40.0, false, false), // remote, 40 %
        ];
        let local = top_jobs(&os, Locality::LocalOnly, 10.0, 40);
        assert_eq!(local.len(), 1);
        assert_eq!(local[0].pandaid, 1);
        let remote = top_jobs(&os, Locality::RemoteOnly, 10.0, 40);
        assert_eq!(remote.len(), 1);
        assert_eq!(remote[0].pandaid, 3);
        assert_eq!(remote[0].job_status, 'F');
    }

    #[test]
    fn sorts_by_queue_time_and_truncates() {
        let os = vec![
            overlap(1, 100.0, 50.0, true, true),
            overlap(2, 900.0, 200.0, true, true),
            overlap(3, 500.0, 100.0, true, true),
        ];
        let rows = top_jobs(&os, Locality::LocalOnly, 10.0, 2);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].pandaid, 2);
        assert_eq!(rows[1].pandaid, 3);
    }

    #[test]
    fn status_letters_match_paper_convention() {
        let os = vec![overlap(7, 100.0, 90.0, true, false)];
        let rows = top_jobs(&os, Locality::LocalOnly, 10.0, 40);
        assert_eq!(rows[0].job_status, 'F');
        assert_eq!(rows[0].task_status, 'F');
        assert!((rows[0].percent - 90.0).abs() < 1e-9);
    }
}
