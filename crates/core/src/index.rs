//! Hash-join matching.
//!
//! Builds two indexes over the store once — file-table rows by `pandaid`,
//! transfers by `jeditaskid` — and runs Algorithm 1's joins as hash
//! lookups. This turns the naive O(|J|·|T|) scan into
//! O(|J| + |F| + |T| + Σ_j |pool_j|), which is what makes matching
//! millions of transfers tractable (§5.5's scalability concern).

use crate::matcher::{file_key, finalize_candidates, job_universe, transfer_key, FileKey, Matcher};
use crate::matchset::{MatchSet, MatchedJob};
use crate::method::MatchMethod;
use dmsa_metastore::MetaStore;
use dmsa_simcore::interval::Interval;
use std::collections::{HashMap, HashSet};

/// Prebuilt join indexes over one store.
pub struct MatchIndex {
    /// File-table row indices by `pandaid`.
    files_by_pandaid: HashMap<u64, Vec<u32>>,
    /// Transfer indices by `jeditaskid` (transfers lacking one are absent).
    transfers_by_taskid: HashMap<u64, Vec<u32>>,
}

impl MatchIndex {
    /// Build indexes for `store`.
    pub fn build(store: &MetaStore) -> Self {
        let mut files_by_pandaid: HashMap<u64, Vec<u32>> = HashMap::new();
        for (i, f) in store.files.iter().enumerate() {
            files_by_pandaid.entry(f.pandaid).or_default().push(i as u32);
        }
        let mut transfers_by_taskid: HashMap<u64, Vec<u32>> = HashMap::new();
        for (i, t) in store.transfers.iter().enumerate() {
            if let Some(tid) = t.jeditaskid {
                transfers_by_taskid.entry(tid).or_default().push(i as u32);
            }
        }
        MatchIndex {
            files_by_pandaid,
            transfers_by_taskid,
        }
    }

    /// Candidate transfers for one job: joined on `jeditaskid` and the
    /// 5-attribute file key. Ascending order.
    pub fn candidates(&self, store: &MetaStore, job_idx: u32) -> Vec<u32> {
        let job = &store.jobs[job_idx as usize];
        let Some(file_rows) = self.files_by_pandaid.get(&job.pandaid) else {
            return Vec::new();
        };
        let keys: HashSet<FileKey> = file_rows
            .iter()
            .map(|&fi| &store.files[fi as usize])
            .filter(|f| f.jeditaskid == job.jeditaskid)
            .map(file_key)
            .collect();
        if keys.is_empty() {
            return Vec::new();
        }
        let Some(pool) = self.transfers_by_taskid.get(&job.jeditaskid) else {
            return Vec::new();
        };
        pool.iter()
            .copied()
            .filter(|&ti| keys.contains(&transfer_key(&store.transfers[ti as usize])))
            .collect()
    }

    /// Match one job under `method`.
    pub fn match_one(&self, store: &MetaStore, job_idx: u32, method: MatchMethod) -> Option<MatchedJob> {
        let candidates = self.candidates(store, job_idx);
        let transfers = finalize_candidates(
            &store.jobs[job_idx as usize],
            &candidates,
            store,
            method,
        );
        (!transfers.is_empty()).then_some(MatchedJob { job_idx, transfers })
    }
}

/// Sequential hash-join matcher.
#[derive(Clone, Copy, Debug, Default)]
pub struct IndexedMatcher;

impl Matcher for IndexedMatcher {
    fn match_jobs(&self, store: &MetaStore, window: Interval, method: MatchMethod) -> MatchSet {
        let index = MatchIndex::build(store);
        let jobs = job_universe(store, window)
            .into_iter()
            .filter_map(|j| index.match_one(store, j, method))
            .collect();
        MatchSet { method, jobs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::testutil::StoreBuilder;
    use crate::matcher::NaiveMatcher;

    /// Build a store exercising all rejection paths at once.
    fn mixed_store() -> (dmsa_metastore::MetaStore, Interval) {
        let mut b = StoreBuilder::new();
        let a = b.site("SITE-A");
        let c = b.site("SITE-C");
        let unknown = dmsa_metastore::SymbolTable::UNKNOWN;
        // Job 1: clean exact match, local.
        b.job_with_file(1, 10, a, 1_000, 0, 100, 200);
        b.download(1, 10, a, a, 1_000, 10, 50);
        // Job 2: byte total inconsistent → RM1 only.
        b.job_with_file(2, 20, a, 2_000, 0, 150, 300);
        b.download(2, 20, a, a, 2_000, 20, 80);
        let j2 = 1usize;
        b.store.jobs[j2].ninputfilebytes = 9_999;
        // Job 3: unknown destination → RM2 only.
        b.job_with_file(3, 30, c, 3_000, 0, 200, 400);
        b.download(3, 30, c, unknown, 3_000, 30, 90);
        // Job 4: transfer too late → never.
        b.job_with_file(4, 40, a, 4_000, 0, 250, 500);
        b.download(4, 40, a, a, 4_000, 600, 700);
        let w = b.window();
        (b.store, w)
    }

    #[test]
    fn indexed_agrees_with_naive_on_all_methods() {
        let (store, w) = mixed_store();
        for m in MatchMethod::ALL {
            let naive = NaiveMatcher.match_jobs(&store, w, m);
            let indexed = IndexedMatcher.match_jobs(&store, w, m);
            assert_eq!(naive, indexed, "divergence under {m:?}");
        }
    }

    #[test]
    fn method_counts_are_monotone() {
        let (store, w) = mixed_store();
        let e = IndexedMatcher.match_jobs(&store, w, MatchMethod::Exact);
        let r1 = IndexedMatcher.match_jobs(&store, w, MatchMethod::Rm1);
        let r2 = IndexedMatcher.match_jobs(&store, w, MatchMethod::Rm2);
        assert_eq!(e.n_matched_jobs(), 1);
        assert_eq!(r1.n_matched_jobs(), 2);
        assert_eq!(r2.n_matched_jobs(), 3);
        assert!(r1.contains(&e));
        assert!(r2.contains(&r1));
    }

    #[test]
    fn candidates_respect_taskid_partition() {
        let (store, _) = mixed_store();
        let idx = MatchIndex::build(&store);
        // Job 0's candidates must all carry its task id.
        for ti in idx.candidates(&store, 0) {
            assert_eq!(store.transfers[ti as usize].jeditaskid, Some(10));
        }
        // And the pool for a job with no files is empty.
        assert!(idx.candidates(&store, 3).len() <= 1);
    }

    #[test]
    fn empty_store_yields_empty_set() {
        let store = dmsa_metastore::MetaStore::new();
        let w = Interval::new(
            dmsa_simcore::SimTime::EPOCH,
            dmsa_simcore::SimTime::from_days(10),
        );
        let m = IndexedMatcher.match_jobs(&store, w, MatchMethod::Rm2);
        assert!(m.jobs.is_empty());
    }
}
