//! The `dmsa` command-line tool.
//!
//! ```text
//! dmsa simulate --preset 8day --scale 0.02 --seed 42 --out campaign.json
//! dmsa simulate --preset faulty --fail-prob 0.1 --max-retries 3 --out campaign.json
//! dmsa simulate --preset faulty --adaptive-exclusion --out adaptive.json
//! dmsa simulate --preset faulty --checkpoint-dir ckpts --checkpoint-every 6h --resume --out campaign.json
//! dmsa match    --campaign campaign.json --method rm2 --engine prepared --out matches.json
//! dmsa analyze  --campaign campaign.json [--matches matches.json] --report summary|matrix|temporal|redundancy
//! dmsa analyze  --campaign adaptive.json --baseline campaign.json --report exclusion
//! dmsa analyze  --campaign damaged.json --quarantine-report --report summary
//! dmsa compare  --campaign campaign.json
//! ```

use dmsa_cli::atomic::{write_atomic, write_atomic_via};
use dmsa_cli::run::{
    analyze, compare_methods, parse_sim_duration, preset_config, run_match, simulate,
    CheckpointKnobs, EngineChoice, FaultKnobs, HealthKnobs, MatcherChoice,
};
use dmsa_cli::serve::{load_store_gen, ServeConfig, Server};
use dmsa_cli::signals;
use dmsa_cli::sweep::{
    human_report, parse_breakers, parse_fail_probs, parse_seeds, run_sweep, SweepOpts,
};
use dmsa_cli::verify;
use dmsa_cli::vfs::{self, ChaosProfile, IoRetryPolicy};
use dmsa_scenario::{PresetAxis, SweepGrid};
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::Ordering;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  dmsa simulate --preset 8day|92day|small|faulty|faulty-adaptive|8day-faulty
                [--scale F] [--seed N]
                [--fail-prob F] [--site-outage F] [--link-outage F]
                [--max-retries N]
                [--adaptive-exclusion] [--breaker-failure-rate F]
                [--breaker-consecutive N] [--breaker-cooldown SECS]
                [--checkpoint-dir DIR] [--checkpoint-every 6h] [--resume]
                [--fork-at DUR]
                [--chaos-profile seed=N,enospc=F,eio=F,torn=F,fsync=F,rename=F]
                [--out FILE]
  dmsa sweep    --out-dir DIR
                [--presets faulty,8day-faulty] [--scale F]
                [--seeds 1,7] [--fail-probs 0.05,0.2]
                [--breakers off,adaptive,adaptive:SECS]
                [--warm-start-at 10h] [--jobs N]
                [--resume] [--cell-retries N] [--cell-timeout SECS]
                [--chaos-profile seed=N,enospc=F,...]
                (journals to sweep-journal.dmsaj; --resume adopts
                 verified-complete cells instead of re-running them,
                 --cell-retries re-runs storage:-quarantined cells with
                 backoff, --cell-timeout quarantines hung cells)
  dmsa verify   DIR
                (offline artifact audit: checkpoint frames, sweep
                 journals, campaign exports, sweep summaries/ops)

  exit codes: 0 = success            2 = usage error
              3 = partial sweep (some cells quarantined; summary valid)
              4 = verify found corruption
  dmsa match    --campaign FILE --method exact|rm1|rm2|scored[:T]
                [--engine naive|indexed|parallel|prepared] [--out FILE]
  dmsa analyze  --campaign FILE [--matches FILE] [--baseline FILE]
                [--quarantine-report]
                --report summary|matrix|temporal|redundancy|exclusion
  dmsa compare  --campaign FILE
  dmsa serve    --campaign FILE [--addr HOST:PORT] [--port-file FILE]
                [--max-inflight N] [--max-conns N] [--max-line-bytes N]
                [--deadline-ms N] [--write-timeout-ms N] [--drain-ms N]
                [--max-quarantine-frac F] [--debug-commands]
                (newline-delimited JSON over TCP: health|match|analyze|
                 reload|shutdown; SIGHUP = hot reload, SIGTERM = drain)";

/// Flags that take no value; their presence means `true`.
const BOOLEAN_FLAGS: &[&str] = &[
    "adaptive-exclusion",
    "resume",
    "quarantine-report",
    "debug-commands",
];

/// Parse `--key value` pairs (and bare boolean flags) after the
/// subcommand.
fn flags(args: &[String]) -> Result<HashMap<&str, &str>, String> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected a --flag, got {:?}", args[i]))?;
        if BOOLEAN_FLAGS.contains(&key) {
            map.insert(key, "true");
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("--{key} needs a value"))?;
        map.insert(key, value.as_str());
        i += 2;
    }
    Ok(map)
}

/// Print to stdout without panicking when the consumer hangs up
/// (`dmsa ... | head`): `BrokenPipe` is quiet success.
fn print_stdout(content: &str) -> Result<(), String> {
    let mut out = std::io::stdout().lock();
    match writeln!(out, "{content}").and_then(|()| out.flush()) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Ok(()),
        Err(e) => Err(format!("writing stdout: {e}")),
    }
}

/// Read a file as text, decoding lossily: a campaign with a few corrupt
/// bytes should reach the quarantine loader (which counts them as
/// bad-utf8 records) instead of dying at the read.
fn read_lossy(path: &str) -> Result<String, String> {
    std::fs::read(path)
        .map(|b| String::from_utf8_lossy(&b).into_owned())
        .map_err(|e| format!("reading {path}: {e}"))
}

fn dispatch(args: &[String]) -> Result<ExitCode, String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err("no subcommand".into());
    };
    // `verify` takes a positional directory, not `--flag value` pairs.
    if cmd == "verify" {
        let dir = rest
            .first()
            .filter(|d| !d.starts_with("--"))
            .ok_or("verify needs a directory (dmsa verify DIR)")?;
        let outcome = verify::verify_dir(Path::new(dir))?;
        print_stdout(&outcome.to_string())?;
        return Ok(if outcome.clean() {
            ExitCode::SUCCESS
        } else {
            // Exit 4: at least one artifact failed its integrity audit
            // (2 = usage error, 3 = partial sweep).
            ExitCode::from(4)
        });
    }
    let f = flags(rest)?;
    let read = |key: &str| -> Result<String, String> {
        let path = f.get(key).ok_or_else(|| format!("--{key} is required"))?;
        read_lossy(path)
    };
    let write_or_print = |key: &str, content: &str| -> Result<(), String> {
        match f.get(key) {
            Some(path) => {
                write_atomic(Path::new(path), content.as_bytes())
                    .map_err(|e| format!("writing {path}: {e}"))?;
                eprintln!("wrote {path} ({} bytes)", content.len());
                Ok(())
            }
            None => print_stdout(content),
        }
    };

    match cmd.as_str() {
        "simulate" => {
            let preset = f.get("preset").copied().unwrap_or("small");
            let scale: f64 = f
                .get("scale")
                .map(|s| s.parse().map_err(|e| format!("bad --scale: {e}")))
                .transpose()?
                .unwrap_or(0.02);
            let seed: u64 = f
                .get("seed")
                .map(|s| s.parse().map_err(|e| format!("bad --seed: {e}")))
                .transpose()?
                .unwrap_or(42);
            let opt_f64 = |key: &str| -> Result<Option<f64>, String> {
                f.get(key)
                    .map(|s| s.parse().map_err(|e| format!("bad --{key}: {e}")))
                    .transpose()
            };
            let knobs = FaultKnobs {
                fail_prob: opt_f64("fail-prob")?,
                site_outage: opt_f64("site-outage")?,
                link_outage: opt_f64("link-outage")?,
                max_retries: f
                    .get("max-retries")
                    .map(|s| s.parse().map_err(|e| format!("bad --max-retries: {e}")))
                    .transpose()?,
            };
            let health = HealthKnobs {
                adaptive: f.contains_key("adaptive-exclusion"),
                failure_rate: opt_f64("breaker-failure-rate")?,
                consecutive: f
                    .get("breaker-consecutive")
                    .map(|s| {
                        s.parse()
                            .map_err(|e| format!("bad --breaker-consecutive: {e}"))
                    })
                    .transpose()?,
                cooldown_secs: f
                    .get("breaker-cooldown")
                    .map(|s| {
                        s.parse()
                            .map_err(|e| format!("bad --breaker-cooldown: {e}"))
                    })
                    .transpose()?,
            };
            let chaos = f
                .get("chaos-profile")
                .map(|s| ChaosProfile::parse(s))
                .transpose()?;
            let mut ckpt = CheckpointKnobs {
                dir: f.get("checkpoint-dir").map(PathBuf::from),
                resume: f.contains_key("resume"),
                chaos,
                ..CheckpointKnobs::default()
            };
            if let Some(every) = f.get("checkpoint-every") {
                ckpt.every = parse_sim_duration(every)?;
            }
            if (ckpt.resume || f.contains_key("checkpoint-every")) && ckpt.dir.is_none() {
                return Err("--resume/--checkpoint-every need --checkpoint-dir".into());
            }
            let fork_at = f
                .get("fork-at")
                .map(|s| parse_sim_duration(s))
                .transpose()?;
            let json = simulate(preset, scale, seed, knobs, health, &ckpt, fork_at)?;
            match f.get("out") {
                // Under a chaos drill the export write itself is a
                // fault-injection target (with the retry ladder).
                Some(path) if chaos.is_some() => {
                    let io = vfs::backend_for(chaos.as_ref());
                    let mut note = |line: String| eprintln!("{line}");
                    vfs::with_retry(&IoRetryPolicy::default(), "export write", &mut note, || {
                        write_atomic_via(&*io, Path::new(path), json.as_bytes())
                            .map_err(|e| e.to_string())
                    })
                    .map_err(|e| format!("writing {path}: {e}"))?;
                    eprintln!("wrote {path} ({} bytes)", json.len());
                }
                _ => write_or_print("out", &json)?,
            }
            Ok(ExitCode::SUCCESS)
        }
        "sweep" => {
            let out_dir = f
                .get("out-dir")
                .ok_or_else(|| "--out-dir is required".to_string())?;
            let scale: f64 = f
                .get("scale")
                .map(|s| s.parse().map_err(|e| format!("bad --scale: {e}")))
                .transpose()?
                .unwrap_or(0.02);
            let presets = f
                .get("presets")
                .copied()
                .unwrap_or("faulty")
                .split(',')
                .map(str::trim)
                .filter(|t| !t.is_empty())
                .map(|name| {
                    Ok(PresetAxis {
                        name: name.to_string(),
                        base: preset_config(name, scale, 0)?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            let grid = SweepGrid {
                presets,
                seeds: parse_seeds(f.get("seeds").copied().unwrap_or("42"))?,
                fail_probs: parse_fail_probs(f.get("fail-probs").copied().unwrap_or(""))?,
                breakers: parse_breakers(f.get("breakers").copied().unwrap_or(""))?,
            };
            // Ctrl-C stops dispatching new cells; in-flight cells finish,
            // unstarted ones are quarantined, and the partial summary is
            // still written (exit 3 = partial success).
            signals::install_termination_handler();
            let opts = SweepOpts {
                jobs: f
                    .get("jobs")
                    .map(|s| s.parse().map_err(|e| format!("bad --jobs: {e}")))
                    .transpose()?
                    .unwrap_or(0),
                warm_start_at: f
                    .get("warm-start-at")
                    .map(|s| parse_sim_duration(s))
                    .transpose()?,
                out_dir: PathBuf::from(out_dir),
                write_cell_exports: true,
                interrupt: Some(signals::termination_requested),
                chaos: f
                    .get("chaos-profile")
                    .map(|s| ChaosProfile::parse(s))
                    .transpose()?,
                resume: f.contains_key("resume"),
                cell_retries: f
                    .get("cell-retries")
                    .map(|s| s.parse().map_err(|e| format!("bad --cell-retries: {e}")))
                    .transpose()?
                    .unwrap_or(0),
                cell_timeout: f
                    .get("cell-timeout")
                    .map(|s| match s.parse::<f64>() {
                        Ok(secs) if secs > 0.0 && secs.is_finite() => {
                            Ok(Duration::from_secs_f64(secs))
                        }
                        _ => Err(format!("bad --cell-timeout {s:?} (want positive seconds)")),
                    })
                    .transpose()?,
                ..SweepOpts::default()
            };
            let outcome = run_sweep(&grid, &opts)?;
            print_stdout(&human_report(&outcome))?;
            eprintln!(
                "wrote {} cell exports + sweep_summary.json to {out_dir}",
                outcome.cells.len() - outcome.n_failed()
            );
            if outcome.n_failed() > 0 {
                Ok(ExitCode::from(3))
            } else {
                Ok(ExitCode::SUCCESS)
            }
        }
        "match" => {
            let campaign = read("campaign")?;
            let method = MatcherChoice::parse(f.get("method").copied().unwrap_or("exact"))?;
            let engine = EngineChoice::parse(f.get("engine").copied().unwrap_or("prepared"))?;
            let (json, stats) = run_match(&campaign, method, engine)?;
            eprintln!("{stats}");
            write_or_print("out", &json)?;
            Ok(ExitCode::SUCCESS)
        }
        "analyze" => {
            let campaign = read("campaign")?;
            let read_opt = |key: &str| -> Result<Option<String>, String> {
                f.get(key).map(|path| read_lossy(path)).transpose()
            };
            let matches = read_opt("matches")?;
            let baseline = read_opt("baseline")?;
            let report = f.get("report").copied().unwrap_or("summary");
            analyze(
                &campaign,
                matches.as_deref(),
                baseline.as_deref(),
                report,
                f.contains_key("quarantine-report"),
                &mut std::io::stdout().lock(),
            )?;
            Ok(ExitCode::SUCCESS)
        }
        "compare" => {
            let campaign = read("campaign")?;
            print_stdout(&compare_methods(&campaign)?)?;
            Ok(ExitCode::SUCCESS)
        }
        "serve" => {
            let campaign_path = f
                .get("campaign")
                .ok_or_else(|| "--campaign is required".to_string())?;
            let parse_ms = |key: &str, default_ms: u64| -> Result<Duration, String> {
                f.get(key)
                    .map(|s| s.parse().map_err(|e| format!("bad --{key}: {e}")))
                    .transpose()
                    .map(|ms| Duration::from_millis(ms.unwrap_or(default_ms)))
            };
            let mut cfg = ServeConfig {
                watch_signals: true,
                debug_commands: f.contains_key("debug-commands"),
                deadline: parse_ms("deadline-ms", 10_000)?,
                write_timeout: parse_ms("write-timeout-ms", 5_000)?,
                drain_deadline: parse_ms("drain-ms", 5_000)?,
                ..ServeConfig::default()
            };
            if let Some(addr) = f.get("addr") {
                cfg.addr = addr.to_string();
            }
            if let Some(n) = f.get("max-inflight") {
                cfg.max_inflight = n.parse().map_err(|e| format!("bad --max-inflight: {e}"))?;
            }
            if let Some(n) = f.get("max-conns") {
                cfg.max_conns = n.parse().map_err(|e| format!("bad --max-conns: {e}"))?;
            }
            if let Some(n) = f.get("max-line-bytes") {
                cfg.max_line_bytes = n
                    .parse()
                    .map_err(|e| format!("bad --max-line-bytes: {e}"))?;
            }
            if let Some(frac) = f.get("max-quarantine-frac") {
                cfg.max_quarantine_frac = frac
                    .parse()
                    .map_err(|e| format!("bad --max-quarantine-frac: {e}"))?;
            }
            let json = read_lossy(campaign_path)?;
            let initial = load_store_gen(&json, campaign_path, cfg.max_quarantine_frac)?;
            drop(json);

            // Latch signals before the accept loop starts polling them.
            signals::install_termination_handler();
            signals::install_reload_handler();

            let server = Server::start(cfg, initial, Some(PathBuf::from(campaign_path)))?;
            let addr = server.local_addr();
            if let Some(port_file) = f.get("port-file") {
                write_atomic(Path::new(port_file), addr.to_string().as_bytes())
                    .map_err(|e| format!("writing {port_file}: {e}"))?;
            }
            eprintln!("dmsa serve: listening on {addr} (campaign {campaign_path})");
            eprintln!("dmsa serve: SIGHUP reloads the campaign, SIGTERM drains and exits");

            while !server.state().draining() {
                std::thread::sleep(Duration::from_millis(50));
            }
            let state = std::sync::Arc::clone(server.state());
            let outcome = server.shutdown();
            let c = state.counters();
            eprintln!(
                "dmsa serve: drained ({}); served {} | shed {} | panics contained {} | reloads {} ok / {} failed",
                if outcome.clean {
                    "clean".to_string()
                } else {
                    format!("{} connection(s) abandoned", outcome.abandoned_conns)
                },
                c.served.load(Ordering::Relaxed),
                c.shed.load(Ordering::Relaxed),
                c.panics.load(Ordering::Relaxed),
                c.reloads_ok.load(Ordering::Relaxed),
                c.reloads_failed.load(Ordering::Relaxed),
            );
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown subcommand {other:?}")),
    }
}
