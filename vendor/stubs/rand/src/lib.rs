//! Offline compile/run stub for `rand` 0.10.
//!
//! Implements just the API surface the dmsa workspace uses, with real
//! (deterministic) behaviour: `SmallRng` is xoshiro256++ seeded via
//! SplitMix64, matching the in-tree `SimRng` draw-for-draw.

/// Core RNG trait (subset).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    fn fill_bytes(&mut self, dst: &mut [u8]) {
        let mut chunks = dst.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&w[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding trait (subset).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable from the "standard" distribution.
pub trait StandardSample: Sized {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`RngExt::random_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty range");
                let span = (b as i128 - a as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (a as i128 + v) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * f64::standard_sample(rng)
    }
}

/// Convenience sampling methods (subset of rand's `Rng`, renamed `RngExt`
/// in 0.10).
pub trait RngExt: RngCore {
    fn random<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    fn random_range<T, U: SampleRange<T>>(&mut self, range: U) -> T {
        range.sample_single(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        f64::standard_sample(self) < p
    }

    fn random_ratio(&mut self, num: u32, den: u32) -> bool {
        assert!(num <= den && den > 0);
        self.random_range(0..den) < num
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ with SplitMix64 seeding (matches real SmallRng on
    /// 64-bit platforms in rand 0.9+).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}
