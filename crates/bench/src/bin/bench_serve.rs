//! Emit the tracked serve-throughput baseline (`BENCH_serve.json`).
//!
//! ```text
//! cargo run --release -p dmsa-bench --bin bench_serve -- \
//!     [--scale F] [--seed N] [--clients N] [--requests-per-client N] \
//!     [--max-inflight N] [--overload-inflight N] [--overload-sleep-ms N] \
//!     [--out FILE|-]
//! ```
//!
//! Two legs against an in-process `dmsa serve` instance:
//!
//! 1. **Throughput** — `--clients` (default 256) concurrent connections
//!    each issue `--requests-per-client` `match` queries back to back.
//!    The in-flight cap defaults to the client count so this leg
//!    measures service throughput, not admission control. Reports
//!    aggregate queries/s plus p50/p99 per-request latency.
//! 2. **Overload shedding** — the in-flight cap is dropped to
//!    `--overload-inflight` and exactly twice that many clients hammer
//!    requests with a fixed `--overload-sleep-ms` service time
//!    (`debug_sleep`, so capacity is deterministic rather than a
//!    function of store size). Shed clients back off one service time
//!    and retry, so the offered load stays at roughly 2× what capacity
//!    can absorb and a substantial fraction of offered requests must be
//!    refused. The leg asserts nothing was *silently* dropped: every
//!    request got either a result or an explicit `overloaded` refusal.
//!
//! Every ratio goes through `safe_ratio`, so the tracked JSON never
//! carries `inf`/`NaN` even on a degenerate clock.

use dmsa_bench::{json_opt_u64, rss, safe_ratio};
use dmsa_cli::export::CampaignExport;
use dmsa_cli::serve::{load_store_gen, ServeConfig, Server};
use dmsa_scenario::ScenarioConfig;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn main() -> ExitCode {
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: bench_serve [--scale F] [--seed N] [--clients N] \
                 [--requests-per-client N] [--max-inflight N] [--overload-inflight N] \
                 [--overload-sleep-ms N] [--out FILE|-]"
            );
            ExitCode::from(2)
        }
    }
}

/// One client's tally for a leg.
#[derive(Default)]
struct ClientTally {
    latencies_ms: Vec<f64>,
    ok: u64,
    shed: u64,
    other: u64,
}

/// How a client treats an `overloaded` refusal.
#[derive(Clone, Copy)]
enum OnShed {
    /// Count it and move to the next request (throughput leg).
    Continue,
    /// Count it, back off this long, and retry until the request
    /// succeeds (overload leg — sustains the offered concurrency
    /// instead of letting shed clients burn their budget instantly).
    RetryAfter(Duration),
}

/// Connect and complete `n` requests of `line`, classifying every reply.
fn client_loop(
    addr: SocketAddr,
    line: &str,
    n: usize,
    on_shed: OnShed,
) -> Result<ClientTally, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| format!("timeout: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut tally = ClientTally::default();
    let mut reply = String::new();
    let mut completed = 0usize;
    while completed < n {
        let t0 = Instant::now();
        writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .map_err(|e| format!("send: {e}"))?;
        reply.clear();
        reader
            .read_line(&mut reply)
            .map_err(|e| format!("recv: {e}"))?;
        if reply.contains("\"ok\":true") {
            tally.latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
            tally.ok += 1;
            completed += 1;
        } else if reply.contains("\"overloaded\"") {
            tally.shed += 1;
            match on_shed {
                OnShed::Continue => completed += 1,
                OnShed::RetryAfter(backoff) => std::thread::sleep(backoff),
            }
        } else {
            tally.other += 1;
            completed += 1;
        }
    }
    Ok(tally)
}

/// Fan `clients` concurrent client loops at the server; merge tallies.
fn drive(
    addr: SocketAddr,
    line: &str,
    clients: usize,
    per_client: usize,
    on_shed: OnShed,
) -> Result<(ClientTally, f64), String> {
    let t0 = Instant::now();
    let tallies: Vec<Result<ClientTally, String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|_| s.spawn(move || client_loop(addr, line, per_client, on_shed)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| Err("client panicked".into())))
            .collect()
    });
    let wall_s = t0.elapsed().as_secs_f64();
    let mut merged = ClientTally::default();
    for t in tallies {
        let t = t?;
        merged.latencies_ms.extend(t.latencies_ms);
        merged.ok += t.ok;
        merged.shed += t.shed;
        merged.other += t.other;
    }
    Ok((merged, wall_s))
}

/// Percentile over a sorted latency list (nearest-rank).
fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_ms.len() as f64).ceil() as usize;
    sorted_ms[rank.clamp(1, sorted_ms.len()) - 1]
}

fn run(args: &[String]) -> Result<(), String> {
    let mut scale = 0.02f64;
    let mut seed = 42u64;
    let mut clients = 256usize;
    let mut per_client = 8usize;
    // 0 = auto (resolved to the client count after flag parsing).
    let mut max_inflight = 0usize;
    let mut overload_inflight = 8usize;
    let mut overload_sleep_ms = 20u64;
    let mut out = "BENCH_serve.json".to_string();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        let parse_usize =
            |v: &str, f: &str| v.parse::<usize>().map_err(|e| format!("bad {f}: {e}"));
        match flag {
            "--scale" => scale = value.parse().map_err(|e| format!("bad --scale: {e}"))?,
            "--seed" => seed = value.parse().map_err(|e| format!("bad --seed: {e}"))?,
            "--clients" => clients = parse_usize(value, flag)?,
            "--requests-per-client" => per_client = parse_usize(value, flag)?,
            "--max-inflight" => max_inflight = parse_usize(value, flag)?,
            "--overload-inflight" => overload_inflight = parse_usize(value, flag)?,
            "--overload-sleep-ms" => {
                overload_sleep_ms = value
                    .parse()
                    .map_err(|e| format!("bad --overload-sleep-ms: {e}"))?
            }
            "--out" => out = value.clone(),
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 2;
    }
    if max_inflight == 0 {
        // The throughput leg measures serving capacity, not shedding:
        // admit every client unless the operator pins a tighter cap.
        max_inflight = clients;
    }

    // One campaign serves both legs: the paper topology at bench scale.
    let config = ScenarioConfig {
        seed,
        ..ScenarioConfig::paper_8day(scale)
    };
    let campaign = dmsa_scenario::run(&config);
    let json = CampaignExport::from_campaign(&campaign).to_json();
    eprintln!(
        "campaign: {} bytes of export (seed {seed}, scale {scale})",
        json.len()
    );

    // --- Leg 1: throughput under ≥`clients` concurrent connections ----
    let cfg = ServeConfig {
        max_inflight,
        max_conns: clients + overload_inflight * 2 + 16,
        ..ServeConfig::default()
    };
    let server = Server::start(cfg, load_store_gen(&json, "<bench>", 0.01)?, None)?;
    let addr = server.local_addr();
    eprintln!(
        "throughput leg: {clients} clients × {per_client} match queries (cap {max_inflight})"
    );
    let (mut tally, wall_s) = drive(
        addr,
        "{\"cmd\":\"match\",\"method\":\"rm2\"}",
        clients,
        per_client,
        OnShed::Continue,
    )?;
    if tally.other > 0 {
        return Err(format!(
            "{} request(s) failed with a non-overload error",
            tally.other
        ));
    }
    tally
        .latencies_ms
        .sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let total = (clients * per_client) as f64;
    let qps = safe_ratio(tally.ok as f64, wall_s);
    let p50 = percentile(&tally.latencies_ms, 50.0);
    let p99 = percentile(&tally.latencies_ms, 99.0);
    eprintln!(
        "  {:.0} ok in {wall_s:.2} s = {qps:.0} q/s | p50 {p50:.2} ms p99 {p99:.2} ms | shed {}",
        tally.ok as f64, tally.shed
    );
    let throughput_shed_rate = safe_ratio(tally.shed as f64, total);
    server.shutdown();

    // --- Leg 2: shed rate at 2x overload ------------------------------
    // Deterministic service time via debug_sleep: capacity is exactly
    // `overload_inflight` concurrent sleepers; twice as many clients
    // offer 2x that concurrency. Each shed client backs off one service
    // time before retrying, so every client offers ~1 request per
    // service interval — 2x the rate capacity can absorb — and a
    // substantial fraction of offered requests must be shed (the exact
    // rate depends on how retries phase-align with slot turnover):
    // explicitly, never silently.
    let overload_clients = overload_inflight * 2;
    let cfg = ServeConfig {
        max_inflight: overload_inflight,
        max_conns: overload_clients + 16,
        debug_commands: true,
        ..ServeConfig::default()
    };
    let server = Server::start(cfg, load_store_gen(&json, "<bench>", 0.01)?, None)?;
    eprintln!(
        "overload leg: {overload_clients} clients vs capacity {overload_inflight} \
         ({overload_sleep_ms} ms service time)"
    );
    let sleep_line = format!("{{\"cmd\":\"debug_sleep\",\"ms\":{overload_sleep_ms}}}");
    let (over, over_wall_s) = drive(
        server.local_addr(),
        &sleep_line,
        overload_clients,
        per_client,
        OnShed::RetryAfter(Duration::from_millis(overload_sleep_ms)),
    )?;
    let offered = over.ok + over.shed + over.other;
    if over.other > 0 {
        return Err(format!(
            "{} overload request(s) failed with a non-overload error",
            over.other
        ));
    }
    let shed_rate = safe_ratio(over.shed as f64, offered.max(1) as f64);
    eprintln!(
        "  offered {offered} | served {} | shed {} (rate {shed_rate:.2}) in {over_wall_s:.2} s",
        over.ok, over.shed
    );
    let drained = server.shutdown();
    if !drained.clean {
        return Err(format!(
            "overload server abandoned {} connection(s) at drain",
            drained.abandoned_conns
        ));
    }

    let mut doc = String::from("{\n");
    doc.push_str(&format!(
        "  \"config\": {{\"scale\": {scale}, \"seed\": {seed}, \"clients\": {clients}, \
         \"requests_per_client\": {per_client}, \"max_inflight\": {max_inflight}}},\n"
    ));
    doc.push_str(&format!(
        "  \"throughput\": {{\"requests\": {}, \"ok\": {}, \"wall_s\": {:.3}, \
         \"qps\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"shed_rate\": {:.4}}},\n",
        clients * per_client,
        tally.ok,
        wall_s,
        qps,
        p50,
        p99,
        throughput_shed_rate
    ));
    doc.push_str(&format!(
        "  \"overload\": {{\"capacity\": {overload_inflight}, \"clients\": {overload_clients}, \
         \"service_ms\": {overload_sleep_ms}, \"offered\": {offered}, \"served\": {}, \
         \"shed\": {}, \"shed_rate\": {:.4}}},\n",
        over.ok, over.shed, shed_rate
    ));
    doc.push_str(&format!(
        "  \"peak_rss_bytes\": {}\n}}\n",
        json_opt_u64(rss::peak_rss_bytes())
    ));
    if out == "-" {
        println!("{doc}");
    } else {
        std::fs::write(&out, &doc).map_err(|e| format!("writing {out}: {e}"))?;
        eprintln!("wrote {out}");
    }
    Ok(())
}
