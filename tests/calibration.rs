//! Shape-calibration tests: the bands the paper's evaluation defines.
//!
//! These intentionally assert *bands*, not exact values — the substrate is
//! a simulator, so absolute counts scale with `--scale`, but the paper's
//! qualitative findings (who wins, by roughly what factor) must hold at
//! any scale. Each band cites the paper number it brackets.

use dmsa::prelude::*;
use dmsa_analysis::activity::ActivityBreakdown;
use dmsa_analysis::matrix::TransferMatrix;
use dmsa_analysis::overlap::all_overlaps;
use dmsa_analysis::threshold::above_threshold;
use dmsa_core::matcher::Matcher;
use dmsa_rucio_sim::Activity;
use std::sync::OnceLock;

struct Ctx {
    campaign: Campaign,
    exact: dmsa_core::MatchSet,
    rm1: dmsa_core::MatchSet,
    rm2: dmsa_core::MatchSet,
}

fn ctx() -> &'static Ctx {
    static CTX: OnceLock<Ctx> = OnceLock::new();
    CTX.get_or_init(|| {
        let campaign = dmsa_scenario::run(&ScenarioConfig::paper_8day(0.015));
        let m = |method| ParallelMatcher.match_jobs(&campaign.store, campaign.window, method);
        Ctx {
            exact: m(MatchMethod::Exact),
            rm1: m(MatchMethod::Rm1),
            rm2: m(MatchMethod::Rm2),
            campaign,
        }
    })
}

#[test]
fn exact_match_rates_sit_in_the_papers_regime() {
    let c = ctx();
    let (_, _, _, with_tid) = c.campaign.store.counts();
    let user_jobs = c.campaign.store.user_jobs_in(c.campaign.window).count();
    let transfer_rate = c.exact.n_matched_transfers() as f64 / with_tid as f64;
    let job_rate = c.exact.n_matched_jobs() as f64 / user_jobs as f64;
    // Paper: 1.92% of with-taskid transfers, 0.82% of user jobs.
    assert!(
        (0.004..0.05).contains(&transfer_rate),
        "exact transfer match rate {transfer_rate} outside the paper's regime"
    );
    assert!(
        (0.003..0.04).contains(&job_rate),
        "exact job match rate {job_rate} outside the paper's regime"
    );
}

#[test]
fn relaxation_gains_match_the_papers_ordering() {
    let c = ctx();
    let e = c.exact.n_matched_transfers() as f64;
    let r1 = c.rm1.n_matched_transfers() as f64;
    let r2 = c.rm2.n_matched_transfers() as f64;
    // Paper: RM1/Exact = 1.21, RM2/RM1 = 1.64.
    assert!(r1 / e >= 1.0 && r1 / e < 1.8, "RM1 gain {:.2}", r1 / e);
    assert!(r2 / r1 > 1.15 && r2 / r1 < 4.0, "RM2 gain {:.2}", r2 / r1);
    // The RM2 increment is dominated by *remote* (unknown-endpoint) matches.
    let tc1 = c.rm1.transfer_counts(&c.campaign.store);
    let tc2 = c.rm2.transfer_counts(&c.campaign.store);
    assert!(
        tc2.remote > tc1.remote * 3,
        "RM2 remote jump too small: {} -> {}",
        tc1.remote,
        tc2.remote
    );
    assert_eq!(
        tc2.local, tc1.local,
        "site relaxation adds no local matches"
    );
}

#[test]
fn exact_matching_yields_essentially_no_mixed_jobs() {
    // Paper Table 2b: 0 mixed jobs under Exact and RM1. We tolerate a
    // sub-percent residue: a direct-I/O job whose local replica is reaped
    // mid-execution legitimately reads one file remotely.
    let c = ctx();
    let jc = c.exact.job_counts(&c.campaign.store);
    assert!(
        jc.mixed <= jc.total() / 100 + 1,
        "exact matching produced {} mixed-locality jobs of {}",
        jc.mixed,
        jc.total()
    );
    assert!(jc.all_local > jc.all_remote, "local jobs must dominate");
}

#[test]
fn activity_breakdown_matches_table1_shape() {
    let c = ctx();
    let table = ActivityBreakdown::build(&c.campaign.store, &c.exact);
    let pick = |a| table.row(a).expect("row exists");
    let ad = pick(Activity::AnalysisDownload);
    let au = pick(Activity::AnalysisUpload);
    let dio = pick(Activity::AnalysisDownloadDirectIo);
    let pu = pick(Activity::ProductionUpload);
    let pd = pick(Activity::ProductionDownload);
    // Paper: AU 95.42% >> AD 8.38% >> DIO 2.31% > P* = 0%.
    assert!(au.percent() > 70.0, "AU {:.1}%", au.percent());
    assert!(au.percent() > ad.percent());
    assert!(
        ad.percent() > dio.percent(),
        "AD {:.1}% vs DIO {:.1}%",
        ad.percent(),
        dio.percent()
    );
    assert_eq!(pu.matched, 0);
    assert_eq!(pd.matched, 0);
    // Production uploads dominate the with-taskid population (paper: 52%).
    let (_, total) = table.totals();
    assert!(
        pu.total as f64 / total as f64 > 0.3,
        "PU share {:.2}",
        pu.total as f64 / total as f64
    );
}

#[test]
fn failures_concentrate_at_extreme_transfer_percentages() {
    let c = ctx();
    let overlaps = all_overlaps(&c.campaign.store, &c.exact);
    let n = overlaps.len();
    let ok = overlaps.iter().filter(|o| o.job_succeeded).count();
    // Paper: 80.5% of matched jobs succeeded.
    let success = ok as f64 / n as f64;
    assert!(
        (0.6..0.95).contains(&success),
        "overall success rate {success}"
    );
    // High staging fractions must carry an elevated failure rate (paper:
    // "most of these extreme cases correspond to failed jobs"). Use the
    // >50 % band when it has enough samples for the claim to be
    // statistical rather than anecdotal; fall back to a weaker sanity
    // check otherwise.
    let above = above_threshold(&overlaps, 50.0);
    let total_above: usize = above.iter().sum();
    let baseline_fail = 1.0 - success;
    if total_above >= 20 {
        let failed_above = (above[1] + above[3]) as f64 / total_above as f64;
        assert!(
            failed_above > baseline_fail * 1.5,
            "high-staging failure rate {failed_above:.2} not elevated vs baseline {baseline_fail:.2} ({total_above} jobs)"
        );
    } else {
        // Tiny sample: at least verify some extreme-percentage job exists.
        assert!(total_above > 0, "no jobs above 50% transfer time at all");
    }
}

#[test]
fn transfer_matrix_shows_fig3_imbalance() {
    let campaign = dmsa_scenario::run(&ScenarioConfig::paper_92day(0.004));
    let matrix = TransferMatrix::build(&campaign.store, campaign.window);
    let s = matrix.summary();
    let local_frac = s.local_bytes as f64 / s.total_bytes as f64;
    // Paper: 77% local.
    assert!(
        (0.5..0.95).contains(&local_frac),
        "local volume fraction {local_frac}"
    );
    // Arithmetic mean far above geometric mean (paper: 70x).
    assert!(
        s.mean_pair_bytes * (matrix.n() * matrix.n()) as f64 / s.n_nonzero_pairs as f64
            > s.geo_mean_pair_bytes,
        "no heavy tail"
    );
    // The top cell is a hub's diagonal.
    let top = &matrix.top_outliers(1)[0];
    assert_eq!(top.src, top.dst, "largest cell must be local");
    // An unknown aggregate exists (paper's 102nd site).
    assert!(matrix.unknown_bytes() > 0);
}

#[test]
fn matched_jobs_have_higher_precision_than_random_assignment() {
    let c = ctx();
    let e = evaluate(&c.campaign.store, &c.rm2, c.campaign.window);
    assert!(
        e.transfer_precision() > 0.95,
        "RM2 precision {}",
        e.transfer_precision()
    );
    assert!(e.transfer_recall() > 0.01);
    assert!(e.transfer_recall() < 0.9, "corruption must hide most links");
}
