//! Minimal async-signal-safe signal latching.
//!
//! The offline build environment has no `libc`/`signal-hook` crates, so
//! this module binds the two libc entry points it needs directly. The
//! handler does the only thing an async-signal-safe handler may do with
//! the tools at hand: set a `static` atomic flag. Everything else —
//! draining connections, reloading stores, writing partial summaries —
//! happens on normal threads that *poll* the latches.
//!
//! Latches are process-global and sticky until consumed:
//!
//! * `SIGTERM`/`SIGINT` → [`termination_requested`] (graceful drain for
//!   `dmsa serve`, dispatch stop for `dmsa sweep`).
//! * `SIGHUP` → [`take_reload_request`] (hot reload for `dmsa serve`;
//!   consuming resets the latch so each HUP triggers one reload).
//!
//! On non-Unix targets installation is a no-op: the latches still work
//! (admin commands set them through [`request_termination`] /
//! [`request_reload`]), only the signal wiring is absent.

use std::sync::atomic::{AtomicBool, Ordering};

/// `SIGHUP` on every Unix dmsa targets.
pub const SIGHUP: i32 = 1;
/// `SIGINT`.
pub const SIGINT: i32 = 2;
/// `SIGTERM`.
pub const SIGTERM: i32 = 15;

static TERM: AtomicBool = AtomicBool::new(false);
static RELOAD: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::{RELOAD, SIGHUP, SIGINT, SIGTERM, TERM};
    use std::sync::atomic::Ordering;

    extern "C" {
        // `signal(2)` — handler is a plain code address; `raise(3)` lets
        // tests and smoke drills deliver a real signal to this process.
        fn signal(signum: i32, handler: usize) -> usize;
        fn raise(signum: i32) -> i32;
    }

    extern "C" fn on_signal(sig: i32) {
        // Async-signal-safe: a relaxed atomic store and nothing else.
        match sig {
            SIGTERM | SIGINT => TERM.store(true, Ordering::Relaxed),
            SIGHUP => RELOAD.store(true, Ordering::Relaxed),
            _ => {}
        }
    }

    pub fn install(signums: &[i32]) {
        for &s in signums {
            // SAFETY: installing a handler that only stores to a static
            // atomic; `on_signal` is async-signal-safe by construction.
            unsafe {
                signal(s, on_signal as *const () as usize);
            }
        }
    }

    pub fn deliver(signum: i32) {
        // SAFETY: raising a signal this module installed a handler for.
        unsafe {
            raise(signum);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install(_signums: &[i32]) {}
    pub fn deliver(_signum: i32) {}
}

/// Latch `SIGTERM`/`SIGINT` into the termination flag. Idempotent.
pub fn install_termination_handler() {
    imp::install(&[SIGTERM, SIGINT]);
}

/// Latch `SIGHUP` into the reload flag. Idempotent.
pub fn install_reload_handler() {
    imp::install(&[SIGHUP]);
}

/// Has a termination signal (or [`request_termination`]) arrived?
/// Sticky: once set it stays set for the life of the process.
pub fn termination_requested() -> bool {
    TERM.load(Ordering::Relaxed)
}

/// Set the termination latch from ordinary code (admin command, tests).
pub fn request_termination() {
    TERM.store(true, Ordering::Relaxed);
}

/// Consume a pending reload request (signal- or admin-initiated),
/// resetting the latch. Each `SIGHUP` therefore triggers one reload.
pub fn take_reload_request() -> bool {
    RELOAD.swap(false, Ordering::Relaxed)
}

/// Set the reload latch from ordinary code (admin command, tests).
pub fn request_reload() {
    RELOAD.store(true, Ordering::Relaxed);
}

/// Reset the sticky termination latch. **Test/drill helper only**: in a
/// real process termination stays requested for the life of the process.
/// Tests that deliver SIGTERM to themselves (sweep interruption drills)
/// must reset the latch afterwards, or every later test in the same
/// binary would observe a phantom termination request.
pub fn reset_termination() {
    TERM.store(false, Ordering::Relaxed);
}

/// Deliver `signum` to this process (test/drill helper; no-op off Unix).
pub fn deliver_to_self(signum: i32) {
    imp::deliver(signum);
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test covers the whole latch lifecycle: latches are process
    // globals, so separate #[test] functions would race each other.
    #[test]
    fn signal_latches_set_and_consume() {
        install_termination_handler();
        install_reload_handler();
        assert!(!take_reload_request());

        #[cfg(unix)]
        {
            deliver_to_self(SIGHUP);
            assert!(take_reload_request(), "SIGHUP latches a reload");
            assert!(!take_reload_request(), "consuming resets the latch");
        }
        request_reload();
        assert!(take_reload_request());

        assert!(!termination_requested());
        #[cfg(unix)]
        {
            deliver_to_self(SIGTERM);
            assert!(termination_requested(), "SIGTERM latches termination");
        }
        #[cfg(not(unix))]
        {
            request_termination();
            assert!(termination_requested());
        }
        reset_termination();
        assert!(!termination_requested(), "reset clears the latch");
    }
}
