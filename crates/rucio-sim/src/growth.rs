//! Long-horizon catalog growth (paper Fig 2).
//!
//! Fig 2 shows the cumulative ATLAS volume managed by Rucio from 2009 to
//! mid-2024, approaching one exabyte and "more than a doubling of the data
//! volume since 2018". The curve is shaped by the LHC run structure: steep
//! accumulation during physics runs, plateaus during long shutdowns. We
//! reproduce that structure with an era table of annual accumulation rates
//! plus small seeded month-to-month noise, keeping the series strictly
//! monotone (data is archived, not deleted, at catalog level).

use dmsa_simcore::RngFactory;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// One point of the growth series.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct GrowthPoint {
    /// Calendar year as a fraction, e.g. `2016.25`.
    pub year: f64,
    /// Cumulative managed volume in exabytes.
    pub exabytes: f64,
}

/// LHC eras and their approximate annual accumulation (EB/year).
const ERAS: &[(f64, f64, f64)] = &[
    // (start_year, end_year, EB added per year)
    (2009.0, 2011.0, 0.010), // commissioning / early Run 1
    (2011.0, 2013.0, 0.045), // Run 1
    (2013.0, 2015.0, 0.015), // Long Shutdown 1
    (2015.0, 2019.0, 0.080), // Run 2
    (2019.0, 2022.0, 0.040), // Long Shutdown 2 (reprocessing + MC)
    (2022.0, 2024.6, 0.135), // Run 3: steepest era → ~1 EB by mid-2024
];

/// Generate the monthly cumulative-volume series from 2009.0 to `end_year`.
pub fn growth_series(rngs: &RngFactory, end_year: f64) -> Vec<GrowthPoint> {
    let mut rng = rngs.stream("rucio/growth");
    let mut out = Vec::new();
    let mut volume = 0.0f64;
    let months = ((end_year - 2009.0) * 12.0).round() as usize;
    for m in 0..=months {
        let year = 2009.0 + m as f64 / 12.0;
        let rate = ERAS
            .iter()
            .find(|&&(s, e, _)| year >= s && year < e)
            .map(|&(_, _, r)| r)
            .unwrap_or(ERAS.last().expect("era table non-empty").2);
        // Monthly increment with ±35% noise; never negative.
        let noise = 0.65 + 0.7 * rng.random::<f64>();
        volume += (rate / 12.0) * noise;
        out.push(GrowthPoint {
            year,
            exabytes: volume,
        });
    }
    out
}

/// Interpolated volume at `year` from a series.
pub fn volume_at(series: &[GrowthPoint], year: f64) -> Option<f64> {
    if series.is_empty() {
        return None;
    }
    if year <= series[0].year {
        return Some(series[0].exabytes);
    }
    for w in series.windows(2) {
        if year >= w[0].year && year <= w[1].year {
            let f = (year - w[0].year) / (w[1].year - w[0].year).max(1e-9);
            return Some(w[0].exabytes * (1.0 - f) + w[1].exabytes * f);
        }
    }
    Some(series.last().expect("non-empty").exabytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> Vec<GrowthPoint> {
        growth_series(&RngFactory::new(42), 2024.5)
    }

    #[test]
    fn series_is_monotone() {
        let s = series();
        assert!(s.windows(2).all(|w| w[1].exabytes >= w[0].exabytes));
    }

    #[test]
    fn approaches_one_exabyte_by_mid_2024() {
        let s = series();
        let end = s.last().unwrap().exabytes;
        assert!(
            (0.75..=1.3).contains(&end),
            "mid-2024 volume {end} EB not near 1 EB"
        );
    }

    #[test]
    fn doubles_since_2018() {
        let s = series();
        let v2018 = volume_at(&s, 2018.5).unwrap();
        let v2024 = volume_at(&s, 2024.5).unwrap();
        assert!(
            v2024 / v2018 >= 2.0,
            "2018→2024 growth {:.2}× below the paper's 'more than doubling'",
            v2024 / v2018
        );
    }

    #[test]
    fn shutdown_eras_grow_slower_than_runs() {
        let s = series();
        let ls1 = volume_at(&s, 2015.0).unwrap() - volume_at(&s, 2013.0).unwrap();
        let run2 = volume_at(&s, 2017.0).unwrap() - volume_at(&s, 2015.0).unwrap();
        assert!(run2 > ls1 * 2.0, "Run 2 ({run2} EB) vs LS1 ({ls1} EB)");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = series();
        let b = series();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.exabytes, y.exabytes);
        }
        let c = growth_series(&RngFactory::new(7), 2024.5);
        assert_ne!(
            a.last().unwrap().exabytes,
            c.last().unwrap().exabytes,
            "different seeds should perturb the series"
        );
    }

    #[test]
    fn volume_at_handles_edges() {
        let s = series();
        assert_eq!(volume_at(&s, 1990.0), Some(s[0].exabytes));
        assert_eq!(volume_at(&s, 2050.0), Some(s.last().unwrap().exabytes));
        assert!(volume_at(&[], 2020.0).is_none());
    }
}
