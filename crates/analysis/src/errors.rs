//! Error-distribution analysis.
//!
//! The paper's introduction claims that uncoordinated optimization
//! produces "altered error distributions" — e.g. §3.1: "shifting failure
//! patterns from the network to the compute infrastructure". This module
//! makes that measurable: it cross-tabulates job error codes against the
//! staging burden (transfer-time percentage bands), so benches can assert
//! that staging-related codes (stage-in timeout, overlay failures)
//! dominate the high-staging bands while payload errors dominate the
//! low-staging bands.

use crate::overlap::JobTransferOverlap;
use dmsa_metastore::MetaStore;
use dmsa_panda_sim::types::error_codes;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Staging-burden band of a job.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum StagingBand {
    /// Transfer time under 10 % of the queue.
    Low,
    /// 10–50 %.
    Medium,
    /// Above 50 %.
    High,
}

impl StagingBand {
    /// Classify a transfer-time percentage.
    pub fn of(percent: f64) -> StagingBand {
        if percent < 10.0 {
            StagingBand::Low
        } else if percent < 50.0 {
            StagingBand::Medium
        } else {
            StagingBand::High
        }
    }

    /// All bands in order.
    pub const ALL: [StagingBand; 3] = [StagingBand::Low, StagingBand::Medium, StagingBand::High];
}

/// Whether an error code implicates the staging path.
pub fn is_staging_related(code: u32) -> bool {
    matches!(
        code,
        error_codes::STAGEIN_TIMEOUT | error_codes::OVERLAY_FAILURE | error_codes::STAGEOUT_FAILURE
    )
}

/// Error counts in one staging band.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct BandErrors {
    /// Failed jobs per error code.
    pub by_code: HashMap<u32, usize>,
    /// Jobs in the band (any status).
    pub n_jobs: usize,
    /// Failed jobs in the band.
    pub n_failed: usize,
}

impl BandErrors {
    /// Fraction of failures with staging-related codes (`None` if no
    /// failures).
    pub fn staging_related_fraction(&self) -> Option<f64> {
        if self.n_failed == 0 {
            return None;
        }
        let staging: usize = self
            .by_code
            .iter()
            .filter(|(&c, _)| is_staging_related(c))
            .map(|(_, &n)| n)
            .sum();
        Some(staging as f64 / self.n_failed as f64)
    }

    /// Failure rate of the band (`None` if empty).
    pub fn failure_rate(&self) -> Option<f64> {
        (self.n_jobs > 0).then(|| self.n_failed as f64 / self.n_jobs as f64)
    }
}

/// Cross-tabulate matched jobs' error codes by staging band.
pub fn error_distribution(
    store: &MetaStore,
    overlaps: &[JobTransferOverlap],
) -> HashMap<StagingBand, BandErrors> {
    let mut out: HashMap<StagingBand, BandErrors> = HashMap::new();
    for band in StagingBand::ALL {
        out.insert(band, BandErrors::default());
    }
    for o in overlaps {
        let band = StagingBand::of(o.percent);
        let entry = out.get_mut(&band).expect("band initialized");
        entry.n_jobs += 1;
        let job = &store.jobs[o.job_idx as usize];
        if let Some(code) = job.error_code {
            entry.n_failed += 1;
            *entry.by_code.entry(code).or_insert(0) += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmsa_metastore::JobRecord;
    use dmsa_panda_sim::{IoMode, JobStatus, TaskStatus};
    use dmsa_simcore::SimTime;

    fn overlap(job_idx: u32, percent: f64) -> JobTransferOverlap {
        JobTransferOverlap {
            job_idx,
            pandaid: job_idx as u64,
            queue_secs: 100.0,
            transfer_secs: percent,
            percent,
            transferred_bytes: 0,
            all_local: true,
            all_remote: false,
            spans_wall: false,
            job_succeeded: false,
            task_succeeded: true,
        }
    }

    fn store_with_errors(codes: &[Option<u32>]) -> MetaStore {
        let mut store = MetaStore::new();
        let site = store.register_site("A");
        for (i, &code) in codes.iter().enumerate() {
            store.jobs.push(JobRecord {
                pandaid: i as u64,
                jeditaskid: 0,
                computingsite: site,
                creationtime: SimTime::EPOCH,
                starttime: SimTime::from_secs(100),
                endtime: SimTime::from_secs(200),
                ninputfilebytes: 0,
                noutputfilebytes: 0,
                io_mode: IoMode::StageIn,
                status: if code.is_some() {
                    JobStatus::Failed
                } else {
                    JobStatus::Finished
                },
                task_status: TaskStatus::Done,
                error_code: code,
                is_user_analysis: true,
            });
        }
        store
    }

    #[test]
    fn bands_classify_percentages() {
        assert_eq!(StagingBand::of(0.0), StagingBand::Low);
        assert_eq!(StagingBand::of(9.99), StagingBand::Low);
        assert_eq!(StagingBand::of(10.0), StagingBand::Medium);
        assert_eq!(StagingBand::of(49.9), StagingBand::Medium);
        assert_eq!(StagingBand::of(50.0), StagingBand::High);
        assert_eq!(StagingBand::of(100.0), StagingBand::High);
    }

    #[test]
    fn staging_related_codes() {
        assert!(is_staging_related(error_codes::STAGEIN_TIMEOUT));
        assert!(is_staging_related(error_codes::OVERLAY_FAILURE));
        assert!(!is_staging_related(error_codes::PAYLOAD_SEGV));
        assert!(!is_staging_related(error_codes::NO_DISK_SPACE));
    }

    #[test]
    fn distribution_cross_tabulates() {
        let store = store_with_errors(&[
            Some(error_codes::PAYLOAD_SEGV),    // job 0: low band
            Some(error_codes::STAGEIN_TIMEOUT), // job 1: high band
            None,                               // job 2: high band, ok
            Some(error_codes::OVERLAY_FAILURE), // job 3: high band
        ]);
        let overlaps = vec![
            overlap(0, 2.0),
            overlap(1, 80.0),
            overlap(2, 90.0),
            overlap(3, 60.0),
        ];
        let dist = error_distribution(&store, &overlaps);
        let low = &dist[&StagingBand::Low];
        let high = &dist[&StagingBand::High];
        assert_eq!(low.n_jobs, 1);
        assert_eq!(low.staging_related_fraction(), Some(0.0));
        assert_eq!(high.n_jobs, 3);
        assert_eq!(high.n_failed, 2);
        assert_eq!(high.staging_related_fraction(), Some(1.0));
        assert!((high.failure_rate().unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(dist[&StagingBand::Medium].n_jobs, 0);
        assert_eq!(dist[&StagingBand::Medium].failure_rate(), None);
    }
}
