//! Closed-open time intervals and interval-union arithmetic.
//!
//! The paper (§5.1) defines a job's *file transfer time* as "the cumulative
//! duration during the job's queuing time phase in which at least one
//! associated file was actively transferring". That is exactly the measure
//! of the union of the transfer intervals, clipped to the queuing window —
//! overlapping transfers must not be double counted. [`union_len_within`]
//! implements this in O(n log n).

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A half-open interval `[start, end)` in simulated time.
///
/// Degenerate intervals (`end <= start`) are permitted and have zero length;
/// they arise naturally from clamping.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Interval {
    /// Inclusive start.
    pub start: SimTime,
    /// Exclusive end.
    pub end: SimTime,
}

impl Interval {
    /// Construct an interval; `end < start` is allowed (empty interval).
    pub fn new(start: SimTime, end: SimTime) -> Self {
        Interval { start, end }
    }

    /// Length of the interval (zero if empty).
    pub fn len(&self) -> SimDuration {
        (self.end - self.start).clamp_non_negative()
    }

    /// True if the interval contains no time.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// True if `t` lies within `[start, end)`.
    pub fn contains(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }

    /// Intersection with another interval (possibly empty).
    pub fn intersect(&self, other: &Interval) -> Interval {
        Interval {
            start: self.start.max(other.start),
            end: self.end.min(other.end),
        }
    }

    /// True if the two intervals share any time.
    pub fn overlaps(&self, other: &Interval) -> bool {
        !self.intersect(other).is_empty()
    }
}

/// Total length of the union of `intervals`, restricted to `window`.
///
/// This is the paper's "file transfer time" when `intervals` are a job's
/// matched transfer spans and `window` is its queuing phase.
pub fn union_len_within(intervals: &[Interval], window: Interval) -> SimDuration {
    let mut clipped: Vec<Interval> = intervals
        .iter()
        .map(|iv| iv.intersect(&window))
        .filter(|iv| !iv.is_empty())
        .collect();
    clipped.sort_by_key(|iv| iv.start);

    let mut total = SimDuration::ZERO;
    let mut cur: Option<Interval> = None;
    for iv in clipped {
        match cur {
            None => cur = Some(iv),
            Some(ref mut c) => {
                if iv.start <= c.end {
                    c.end = c.end.max(iv.end);
                } else {
                    total += c.len();
                    cur = Some(iv);
                }
            }
        }
    }
    if let Some(c) = cur {
        total += c.len();
    }
    total
}

/// Merge intervals into a minimal sorted list of disjoint intervals.
pub fn merge(intervals: &[Interval]) -> Vec<Interval> {
    let mut ivs: Vec<Interval> = intervals
        .iter()
        .copied()
        .filter(|iv| !iv.is_empty())
        .collect();
    ivs.sort_by_key(|iv| iv.start);
    let mut out: Vec<Interval> = Vec::with_capacity(ivs.len());
    for iv in ivs {
        match out.last_mut() {
            Some(last) if iv.start <= last.end => last.end = last.end.max(iv.end),
            _ => out.push(iv),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: i64, b: i64) -> Interval {
        Interval::new(SimTime::from_secs(a), SimTime::from_secs(b))
    }

    #[test]
    fn basic_length_and_emptiness() {
        assert_eq!(iv(2, 5).len(), SimDuration::from_secs(3));
        assert!(iv(5, 5).is_empty());
        assert!(iv(7, 3).is_empty());
        assert_eq!(iv(7, 3).len(), SimDuration::ZERO);
    }

    #[test]
    fn contains_is_half_open() {
        let x = iv(1, 3);
        assert!(x.contains(SimTime::from_secs(1)));
        assert!(x.contains(SimTime::from_secs(2)));
        assert!(!x.contains(SimTime::from_secs(3)));
    }

    #[test]
    fn intersection_and_overlap() {
        assert_eq!(iv(0, 10).intersect(&iv(5, 15)), iv(5, 10));
        assert!(iv(0, 10).overlaps(&iv(9, 20)));
        assert!(!iv(0, 10).overlaps(&iv(10, 20)), "touching is not overlap");
        assert!(!iv(0, 5).overlaps(&iv(6, 7)));
    }

    #[test]
    fn union_counts_overlap_once() {
        // Two overlapping transfers: [0,10) and [5,15) union to 15s, not 20s.
        let total = union_len_within(&[iv(0, 10), iv(5, 15)], iv(0, 100));
        assert_eq!(total, SimDuration::from_secs(15));
    }

    #[test]
    fn union_respects_window_clipping() {
        // Transfer spans past the queuing window end; only the in-window part counts.
        let total = union_len_within(&[iv(0, 50)], iv(10, 20));
        assert_eq!(total, SimDuration::from_secs(10));
    }

    #[test]
    fn union_of_disjoint_sums() {
        let total = union_len_within(&[iv(0, 1), iv(2, 3), iv(4, 5)], iv(0, 10));
        assert_eq!(total, SimDuration::from_secs(3));
    }

    #[test]
    fn union_empty_inputs() {
        assert_eq!(union_len_within(&[], iv(0, 10)), SimDuration::ZERO);
        assert_eq!(union_len_within(&[iv(3, 3)], iv(0, 10)), SimDuration::ZERO);
        assert_eq!(union_len_within(&[iv(0, 5)], iv(5, 5)), SimDuration::ZERO);
    }

    #[test]
    fn union_touching_intervals_merge_seamlessly() {
        let total = union_len_within(&[iv(0, 5), iv(5, 10)], iv(0, 100));
        assert_eq!(total, SimDuration::from_secs(10));
    }

    #[test]
    fn merge_produces_disjoint_sorted() {
        let merged = merge(&[iv(5, 7), iv(0, 2), iv(1, 3), iv(6, 10)]);
        assert_eq!(merged, vec![iv(0, 3), iv(5, 10)]);
    }

    #[test]
    fn merge_drops_empties() {
        assert_eq!(merge(&[iv(4, 4), iv(9, 2)]), vec![]);
    }
}
