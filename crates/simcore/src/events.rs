//! Stable discrete-event queue.
//!
//! A thin wrapper over [`std::collections::BinaryHeap`] that delivers events
//! in non-decreasing timestamp order and — crucially for reproducibility —
//! **FIFO among events scheduled for the same instant**. A plain binary heap
//! gives no such guarantee, so every entry carries a monotonically
//! increasing sequence number used as a tiebreaker.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// ```
/// use dmsa_simcore::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(10), "b");
/// q.push(SimTime::from_secs(5), "a");
/// q.push(SimTime::from_secs(10), "c"); // same time as "b": FIFO
/// assert_eq!(q.pop(), Some((SimTime::from_secs(5), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(10), "b")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(10), "c")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue positioned at the epoch.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::EPOCH,
        }
    }

    /// Create an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            now: SimTime::EPOCH,
        }
    }

    /// Schedule `event` at absolute time `time`.
    ///
    /// Scheduling in the past (before the last popped timestamp) is a logic
    /// error in the caller; debug builds panic, release builds clamp to
    /// "now" so the simulation still makes forward progress.
    pub fn push(&mut self, time: SimTime, event: E) {
        debug_assert!(
            time >= self.now,
            "scheduled event at {time:?} before current time {:?}",
            self.now
        );
        let time = time.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Pop the earliest event, advancing the queue's clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// The timestamp of the most recently popped event (the current
    /// simulated instant).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The sequence number the next pushed event will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// All pending entries as `(time, seq, event)`, sorted by `(time, seq)`
    /// — the exact pop order. Canonical form for checkpoint encoding: the
    /// heap's internal layout is not observable, so two queues holding the
    /// same entries always snapshot identically.
    pub fn snapshot_entries(&self) -> Vec<(SimTime, u64, &E)> {
        let mut entries: Vec<(SimTime, u64, &E)> = self
            .heap
            .iter()
            .map(|e| (e.time, e.seq, &e.event))
            .collect();
        entries.sort_by_key(|&(t, s, _)| (t, s));
        entries
    }

    /// Rebuild a queue from checkpointed entries plus the clock and
    /// sequence counter captured alongside them. Entries keep their
    /// original sequence numbers, so FIFO tiebreaks replay exactly.
    pub fn restore(entries: Vec<(SimTime, u64, E)>, next_seq: u64, now: SimTime) -> Self {
        let heap = entries
            .into_iter()
            .map(|(time, seq, event)| {
                debug_assert!(seq < next_seq, "entry seq {seq} >= next_seq {next_seq}");
                Entry { time, seq, event }
            })
            .collect();
        EventQueue {
            heap,
            next_seq,
            now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &s in &[30i64, 10, 20, 5, 25] {
            q.push(SimTime::from_secs(s), s);
        }
        let mut out = Vec::new();
        while let Some((_, e)) = q.pop() {
            out.push(e);
        }
        assert_eq!(out, vec![5, 10, 20, 25, 30]);
    }

    #[test]
    fn fifo_among_equal_timestamps() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(7), ());
        assert_eq!(q.now(), SimTime::EPOCH);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(7));
    }

    #[test]
    fn interleaved_push_pop_remains_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), 1);
        q.push(SimTime::from_secs(3), 3);
        assert_eq!(q.pop().unwrap().1, 1);
        // Push something between current time and the pending event.
        q.push(q.now() + SimDuration::from_secs(1), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(4), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)));
        assert_eq!(q.now(), SimTime::EPOCH);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    #[should_panic(expected = "before current time")]
    #[cfg(debug_assertions)]
    fn scheduling_in_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), ());
        q.pop();
        q.push(SimTime::from_secs(5), ());
    }

    #[test]
    fn snapshot_restore_replays_identically() {
        let mut q = EventQueue::new();
        for &s in &[30i64, 10, 20, 10, 25] {
            q.push(SimTime::from_secs(s), s);
        }
        q.pop(); // advance the clock past the first event
        let entries: Vec<(SimTime, u64, i64)> = q
            .snapshot_entries()
            .into_iter()
            .map(|(t, s, &e)| (t, s, e))
            .collect();
        // Canonical order: sorted by (time, seq).
        assert!(entries
            .windows(2)
            .all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)));
        let mut r = EventQueue::restore(entries, q.next_seq(), q.now());
        assert_eq!(r.now(), q.now());
        assert_eq!(r.next_seq(), q.next_seq());
        // Both queues must drain in the same order, FIFO ties included.
        loop {
            match (q.pop(), r.pop()) {
                (None, None) => break,
                (a, b) => assert_eq!(a, b),
            }
        }
        // And accept new pushes with continuing sequence numbers.
        r.push(r.now() + SimDuration::from_secs(1), 99);
        assert_eq!(r.pop().unwrap().1, 99);
    }
}
