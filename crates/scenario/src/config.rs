//! Campaign configuration and the paper's calibrated presets.

use dmsa_gridnet::{FaultConfig, HealthConfig, TopologyConfig};
use dmsa_metastore::CorruptionModel;
use dmsa_panda_sim::{BrokerConfig, FailureModel, WorkloadParams};
use dmsa_rucio_sim::RetryPolicy;
use dmsa_simcore::SimDuration;
use serde::{Deserialize, Serialize};

/// Everything needed to run one campaign.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Master seed; the entire campaign is a pure function of this config.
    pub seed: u64,
    /// Grid shape.
    pub topology: TopologyConfig,
    /// Workload distributions.
    pub workload: WorkloadParams,
    /// Brokerage policy.
    pub broker: BrokerConfig,
    /// Failure process.
    pub failure: FailureModel,
    /// Transfer-level fault injection: outage schedules and per-attempt
    /// failure probabilities. Inert by default (`#[serde(default)]` keeps
    /// pre-fault configs loadable), making the failure layer strictly
    /// additive — zero knobs reproduce pre-fault campaigns byte for byte.
    #[serde(default)]
    pub faults: FaultConfig,
    /// Retry/backoff schedule for failed transfer attempts. Irrelevant
    /// (never consulted) while `faults` is inert.
    #[serde(default)]
    pub retry: RetryPolicy,
    /// Closed-loop health: circuit breakers over failure telemetry, with
    /// health-aware brokerage and source selection. Disabled by default
    /// (`#[serde(default)]`), and with it disabled no component consults
    /// the monitor — existing campaigns stay byte-identical.
    #[serde(default)]
    pub health: HealthConfig,
    /// Metadata-quality model applied to the final store.
    pub corruption: CorruptionModel,
    /// Observation window length (jobs must finish inside it to count).
    pub duration: SimDuration,
    /// Rule/rebalancing/tape traffic (no `jeditaskid`) per hour.
    pub background_transfers_per_hour: f64,
    /// Fraction of background transfers that are intra-site (tape recall,
    /// consolidation) rather than cross-site rebalancing. Drives the
    /// diagonal weight of the Fig 3 matrix.
    pub background_local_fraction: f64,
    /// Fraction of finished jobs whose output upload produces a recorded
    /// transfer (the paper saw only 3,059 Analysis Upload events against
    /// ~1 M jobs).
    pub upload_recorded_fraction: f64,
    /// Fraction of recorded uploads that go to a remote RSE (user home
    /// storage) instead of site-local storage.
    pub upload_remote_fraction: f64,
    /// Fraction of direct-I/O reads that fetch the *whole* file (and so
    /// can pass the byte-exact attribute join). The rest are partial.
    pub dio_full_read_fraction: f64,
    /// Fraction of direct-I/O reads that produce transfer records at all.
    pub dio_recorded_fraction: f64,
    /// Fraction of production jobs that stage input via a recorded
    /// Production Download.
    pub prod_download_fraction: f64,
    /// Pathology knob: probability a stage-in job starts executing before
    /// its staging completes (the Fig 11 spanning-transfer anomaly).
    pub p_start_before_staging: f64,
    /// Fraction of stage-in jobs whose pilot downloads input files
    /// strictly one after another (legacy `rucio download` loop) even when
    /// the storage frontend could parallelize — the Fig 10 "transfers
    /// occurred sequentially rather than in parallel" evidence of
    /// bandwidth under-utilization.
    pub p_sequential_stagein: f64,
    /// iDDS-style pre-staging (the paper's related work, §6): this
    /// fraction of user tasks has its whole input dataset delivered to a
    /// chosen site *at task creation*, ahead of job dispatch — the Data
    /// Carousel pattern. Default 0 (the paper's production baseline); the
    /// what-if experiment sweeps it.
    pub prestage_fraction: f64,
    /// Pre-existing input datasets in the catalog.
    pub initial_datasets: usize,
    /// Replicas per pre-existing dataset (placed activity-weighted).
    pub max_replicas_per_dataset: usize,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            seed: 42,
            topology: TopologyConfig::default(),
            workload: WorkloadParams::default(),
            broker: BrokerConfig::default(),
            failure: FailureModel::default(),
            faults: FaultConfig::none(),
            retry: RetryPolicy::default(),
            health: HealthConfig::disabled(),
            corruption: CorruptionModel::default(),
            duration: SimDuration::from_days(8),
            background_transfers_per_hour: 1_500.0,
            background_local_fraction: 0.70,
            upload_recorded_fraction: 0.004,
            upload_remote_fraction: 0.25,
            dio_full_read_fraction: 0.12,
            dio_recorded_fraction: 0.30,
            prod_download_fraction: 0.04,
            p_start_before_staging: 0.03,
            p_sequential_stagein: 0.35,
            prestage_fraction: 0.0,
            initial_datasets: 1_500,
            max_replicas_per_dataset: 3,
        }
    }
}

impl ScenarioConfig {
    /// The §5 matching-study campaign: an 8-day window (04/01–04/09/2025
    /// in the paper). `scale = 1.0` targets the paper's raw volumes
    /// (~966 k user jobs, ~6.8 M transfers); CI and examples run
    /// `scale ≈ 0.02–0.1`.
    pub fn paper_8day(scale: f64) -> Self {
        let mut c = ScenarioConfig::default();
        // At scale 1.0: ~205 user tasks/h × 192 h × ~8.4 jobs/task
        // (completion-weighted) ≈ 0.97 M user jobs.
        c.workload.tasks_per_hour = 700.0 * scale;
        c.workload.production_fraction = 0.10;
        c.background_transfers_per_hour = 27_000.0 * scale;
        c.initial_datasets = ((4_000.0 * scale) as usize).max(60);
        // Compute capacity scales with the workload so hot-site queueing
        // contention (Fig 5's >10,000 s queues) survives down-scaling, and
        // disk capacity scales so storage pressure keeps the deletion
        // reaper active (a causal source of redundant transfers).
        c.topology.t2_compute_slots = ((400.0 * scale) as u32).max(6);
        c.topology.t2_disk_capacity_bytes = ((60.0e12 * scale) as u64).max(200_000_000_000);
        c
    }

    /// The Fig 3 campaign: a 92-day window (05/01–07/31/2025), used only
    /// for the site-to-site transfer matrix, so job traffic can be thinner
    /// while background (rule-driven) traffic dominates volume.
    pub fn paper_92day(scale: f64) -> Self {
        let mut c = ScenarioConfig {
            duration: SimDuration::from_days(92),
            background_transfers_per_hour: 8_000.0 * scale,
            initial_datasets: ((3_000.0 * scale) as usize).max(60),
            ..ScenarioConfig::default()
        };
        c.workload.tasks_per_hour = 120.0 * scale;
        c.topology.t2_compute_slots = ((120.0 * scale) as u32).max(6);
        c.topology.t2_disk_capacity_bytes = ((40.0e12 * scale) as u64).max(200_000_000_000);
        c
    }

    /// A fast, small campaign for unit/integration tests: small topology,
    /// a few hours, a few thousand jobs.
    pub fn small() -> Self {
        let mut c = ScenarioConfig {
            topology: TopologyConfig::small(),
            duration: SimDuration::from_hours(12),
            background_transfers_per_hour: 200.0,
            initial_datasets: 80,
            ..ScenarioConfig::default()
        };
        c.workload.tasks_per_hour = 30.0;
        c.topology.t2_compute_slots = 24;
        c
    }

    /// Same as [`ScenarioConfig::small`] but with pristine metadata —
    /// the evaluator must then score exact matching perfectly.
    pub fn small_clean() -> Self {
        ScenarioConfig {
            corruption: CorruptionModel::none(),
            ..Self::small()
        }
    }

    /// Same as [`ScenarioConfig::small`] but on a degraded grid: attempt
    /// failures and occasional site/link outages, so the retry path, the
    /// lost-input surface, and the retry-redundancy analysis all light up
    /// in tests and the CI smoke run.
    pub fn small_faulty() -> Self {
        ScenarioConfig {
            faults: FaultConfig::degraded(),
            ..Self::small()
        }
    }

    /// Fingerprint of **every** behavior-affecting knob: a stable hash of
    /// the config's derived `Debug` rendering, which enumerates all
    /// fields recursively — a knob added to any sub-config is picked up
    /// automatically, so the fingerprint can never silently lag the
    /// config the way the old seed+duration check did. Two configs with
    /// equal fingerprints produce byte-identical campaigns from the same
    /// seed; any differing knob — fault rates, breaker thresholds, retry
    /// budgets, workload shape — changes the fingerprint. Snapshots embed
    /// it so [`crate::snapshot::validate`] refuses a resume under a config
    /// that would silently replay divergent state.
    pub fn behavior_fingerprint(&self) -> u64 {
        dmsa_simcore::fx::hash_bytes(format!("{self:?}").as_bytes())
    }

    /// Fingerprint of the *structural* knobs a deliberate config fork must
    /// still agree on: the master seed (RNG stream continuity) and the
    /// topology (site/RSE/link shape every snapshotted table is indexed
    /// by). [`crate::snapshot::fork_with_config`] checks only this, so a
    /// warm-started sweep cell may change fault rates, breaker settings,
    /// retry budgets, or workload mid-flight — but never the grid itself.
    pub fn structural_fingerprint(&self) -> u64 {
        let topo = format!("{:?}", self.topology);
        let mut bytes = Vec::with_capacity(8 + topo.len());
        bytes.extend_from_slice(&self.seed.to_le_bytes());
        bytes.extend_from_slice(topo.as_bytes());
        dmsa_simcore::fx::hash_bytes(&bytes)
    }

    /// [`ScenarioConfig::small_faulty`] with the closed health loop armed:
    /// the same degraded grid, but breakers now exclude sick sites/links
    /// from brokerage and source selection. Diffing this preset against
    /// `small_faulty` (same seed) is the measured value of adaptive
    /// exclusion — the `exclusion` analysis report automates the diff.
    pub fn faulty_adaptive() -> Self {
        ScenarioConfig {
            health: HealthConfig::adaptive(),
            ..Self::small_faulty()
        }
    }

    /// [`ScenarioConfig::paper_8day`] on a degraded grid: the paper's
    /// full 111-site topology with the fault model armed. The ablation
    /// preset for sweeps and the sweep bench — per-event brokerage and
    /// replica-scan work scales with the site count while the record
    /// volume scales with the workload, so at small `scale` the event
    /// loop (which a warm start skips) dominates each cell.
    pub fn paper_8day_faulty(scale: f64) -> Self {
        ScenarioConfig {
            faults: FaultConfig::degraded(),
            ..Self::paper_8day(scale)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_windows() {
        assert_eq!(
            ScenarioConfig::paper_8day(1.0).duration,
            SimDuration::from_days(8)
        );
        assert_eq!(
            ScenarioConfig::paper_92day(1.0).duration,
            SimDuration::from_days(92)
        );
        assert!(ScenarioConfig::small().duration < SimDuration::from_days(1));
    }

    #[test]
    fn scale_factors_apply() {
        let a = ScenarioConfig::paper_8day(1.0);
        let b = ScenarioConfig::paper_8day(0.1);
        assert!((a.workload.tasks_per_hour / b.workload.tasks_per_hour - 10.0).abs() < 1e-9);
        assert!(a.background_transfers_per_hour > b.background_transfers_per_hour);
    }

    #[test]
    fn clean_preset_disables_corruption() {
        let c = ScenarioConfig::small_clean();
        assert_eq!(c.corruption.p_drop_transfer, 0.0);
        assert_eq!(c.corruption.p_unknown_site, 0.0);
    }

    #[test]
    fn faults_default_to_inert() {
        assert!(!ScenarioConfig::default().faults.enabled());
        assert!(!ScenarioConfig::paper_8day(1.0).faults.enabled());
        assert!(ScenarioConfig::small_faulty().faults.enabled());
    }

    #[test]
    fn behavior_fingerprint_sees_every_knob_class() {
        let base = ScenarioConfig::small_faulty();
        let fp = base.behavior_fingerprint();
        // Stable for an identical config.
        assert_eq!(fp, base.behavior_fingerprint());
        // Sensitive to fault rates, breaker settings, retry budget, seed.
        let mut c = base.clone();
        c.faults.p_attempt_failure += 0.01;
        assert_ne!(fp, c.behavior_fingerprint(), "fault rate missed");
        let mut c = base.clone();
        c.health = dmsa_gridnet::HealthConfig::adaptive();
        assert_ne!(fp, c.behavior_fingerprint(), "breaker arming missed");
        let mut c = ScenarioConfig::faulty_adaptive();
        let fp_a = c.behavior_fingerprint();
        c.health.cooldown = c.health.cooldown + SimDuration::from_secs(1);
        assert_ne!(fp_a, c.behavior_fingerprint(), "breaker cooldown missed");
        let mut c = base.clone();
        c.retry.max_retries += 1;
        assert_ne!(fp, c.behavior_fingerprint(), "retry budget missed");
        let mut c = base.clone();
        c.seed += 1;
        assert_ne!(fp, c.behavior_fingerprint(), "seed missed");
    }

    #[test]
    fn structural_fingerprint_ignores_forkable_knobs() {
        let base = ScenarioConfig::small_faulty();
        let fp = base.structural_fingerprint();
        // Forkable knobs leave it alone...
        let mut c = base.clone();
        c.faults.p_attempt_failure += 0.05;
        c.health = dmsa_gridnet::HealthConfig::adaptive();
        c.retry.max_retries += 3;
        assert_eq!(fp, c.structural_fingerprint());
        // ...seed and topology do not.
        let mut c = base.clone();
        c.seed += 1;
        assert_ne!(fp, c.structural_fingerprint());
        let mut c = base.clone();
        c.topology = TopologyConfig::default();
        assert_ne!(fp, c.structural_fingerprint());
    }

    #[test]
    fn health_defaults_to_disabled() {
        // The serde default (what a pre-health config deserializes to)
        // must be the inert monitor, and only the adaptive preset arms it.
        assert!(!dmsa_gridnet::HealthConfig::default().enabled);
        assert!(!ScenarioConfig::default().health.enabled);
        assert!(!ScenarioConfig::small_faulty().health.enabled);
        let adaptive = ScenarioConfig::faulty_adaptive();
        assert!(adaptive.health.enabled);
        assert!(adaptive.faults.enabled());
    }
}
