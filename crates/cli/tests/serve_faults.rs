//! Fault drill: one `dmsa serve` instance survives, in order, an
//! overload burst (explicit sheds), a panicking request, a request that
//! blows its deadline, a slow client that never reads its replies, a
//! hot reload raced by concurrent match queries, and a reload from a
//! corrupt export — then drains clean. Match replies must stay
//! byte-identical through all of it: across the sheds, the panic, the
//! good reload, and the rolled-back one.

use dmsa_cli::serve::{load_store_gen, ServeConfig, Server};
use dmsa_cli::CampaignExport;
use dmsa_scenario::ScenarioConfig;
use dmsa_simcore::SimDuration;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

fn tiny_export_json() -> String {
    let mut c = ScenarioConfig::small();
    c.duration = SimDuration::from_hours(3);
    c.workload.tasks_per_hour = 10.0;
    c.background_transfers_per_hour = 50.0;
    c.initial_datasets = 20;
    let campaign = dmsa_scenario::run(&c);
    CampaignExport::from_campaign(&campaign).to_json()
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client { stream, reader }
    }

    fn send(&mut self, line: &str) {
        self.stream
            .write_all(line.as_bytes())
            .and_then(|()| self.stream.write_all(b"\n"))
            .expect("send");
    }

    fn recv(&mut self) -> String {
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("recv");
        reply.trim_end().to_string()
    }

    fn round_trip(&mut self, line: &str) -> String {
        self.send(line);
        self.recv()
    }
}

const MATCH_FULL: &str = "{\"cmd\":\"match\",\"method\":\"rm2\",\"full\":true}";

#[test]
fn fault_drill_survives_overload_panic_slow_clients_and_corrupt_reload() {
    let json = tiny_export_json();
    let dir = std::env::temp_dir().join(format!("dmsa-serve-drill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let export_path = dir.join("export.json");
    std::fs::write(&export_path, &json).expect("write export");
    let corrupt_path = dir.join("corrupt.json");
    std::fs::write(&corrupt_path, b"{\"jobs\": this is not an export").expect("write corrupt");

    let cfg = ServeConfig {
        max_inflight: 4,
        deadline: Duration::from_secs(1),
        write_timeout: Duration::from_millis(300),
        debug_commands: true,
        ..ServeConfig::default()
    };
    let server = Server::start(
        cfg,
        load_store_gen(&json, "<drill>", 0.01).expect("export loads"),
        Some(export_path.clone()),
    )
    .expect("server starts");
    let addr = server.local_addr();
    let mut client = Client::connect(addr);

    // Baseline: the reference match reply every later phase must match.
    let reference = client.round_trip(MATCH_FULL);
    assert!(reference.contains("\"ok\":true"), "{reference}");
    assert!(client
        .round_trip("{\"cmd\":\"health\"}")
        .contains("\"generation\":1"));

    // --- Overload: fill all 4 slots with sleepers, expect a shed. ----
    let barrier = Arc::new(Barrier::new(5));
    let sleepers: Vec<_> = (0..4)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                barrier.wait();
                let reply = c.round_trip("{\"cmd\":\"debug_sleep\",\"ms\":600}");
                assert!(reply.contains("\"ok\":true"), "sleeper: {reply}");
            })
        })
        .collect();
    barrier.wait();
    // All 4 slots are held for 600 ms once the sleepers are admitted;
    // probe until one of our requests lands inside that window.
    let deadline = Instant::now() + Duration::from_millis(450);
    let mut saw_shed = false;
    while Instant::now() < deadline {
        let reply = client.round_trip(MATCH_FULL);
        if reply.contains("\"error\":\"overloaded\"") {
            saw_shed = true;
            break;
        }
        assert_eq!(reply, reference, "non-shed replies stay identical");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(saw_shed, "no request was shed while all slots slept");
    for s in sleepers {
        s.join().expect("sleeper thread");
    }

    // --- Panic containment: the request fails, the server does not. --
    let reply = client.round_trip("{\"cmd\":\"debug_panic\"}");
    assert!(reply.contains("\"error\":\"internal_error\""), "{reply}");
    assert_eq!(client.round_trip(MATCH_FULL), reference);

    // --- Deadline: a request slower than the budget is cancelled. ----
    let reply = client.round_trip("{\"cmd\":\"debug_sleep\",\"ms\":2500}");
    assert!(reply.contains("\"error\":\"deadline_exceeded\""), "{reply}");
    assert_eq!(client.round_trip(MATCH_FULL), reference);

    // --- Slow client: floods requests, never reads; the server must
    // cut it loose on the write timeout instead of blocking a thread
    // forever. Push enough reply bytes to overflow the socket buffers.
    let requests = (8 << 20) / reference.len() + 16;
    let mut slow = Client::connect(addr);
    let mut burst = String::new();
    for _ in 0..requests {
        burst.push_str(MATCH_FULL);
        burst.push('\n');
    }
    // The server stops reading once its reply write blocks, so a single
    // huge send could block *us*; write from a throwaway thread.
    let writer = std::thread::spawn(move || {
        let _ = slow.stream.write_all(burst.as_bytes());
        slow // keep the socket open (unread) until the server drops it
    });
    let state = Arc::clone(server.state());
    let cut = Instant::now() + Duration::from_secs(10);
    while state.counters().slow_client_drops.load(Ordering::Relaxed) == 0 {
        assert!(Instant::now() < cut, "server never dropped the slow client");
        std::thread::sleep(Duration::from_millis(20));
    }
    drop(writer); // let it finish on its own; the drop below closes the socket
    assert_eq!(
        client.round_trip(MATCH_FULL),
        reference,
        "healthy client unaffected"
    );

    // --- Hot reload raced by live queries: every reply byte-identical
    // across the swap; a corrupt reload rolls back without a wobble. --
    let stop = Arc::new(AtomicBool::new(false));
    let racers: Vec<_> = (0..3)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let reference = reference.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                let mut n = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    assert_eq!(
                        c.round_trip(MATCH_FULL),
                        reference,
                        "reply changed mid-reload"
                    );
                    n += 1;
                }
                n
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(50));
    let reply = client.round_trip("{\"cmd\":\"reload\"}");
    assert!(
        reply.contains("\"ok\":true") && reply.contains("\"generation\":2"),
        "{reply}"
    );
    std::thread::sleep(Duration::from_millis(50));
    let corrupt_req = format!(
        "{{\"cmd\":\"reload\",\"path\":{:?}}}",
        corrupt_path.to_str().expect("utf-8 path")
    );
    let reply = client.round_trip(&corrupt_req);
    assert!(reply.contains("\"error\":\"reload_failed\""), "{reply}");
    std::thread::sleep(Duration::from_millis(50));
    stop.store(true, Ordering::Relaxed);
    for r in racers {
        assert!(r.join().expect("racer thread") > 0, "racer never queried");
    }
    // The failed reload rolled back: generation 2 still serves.
    let health = client.round_trip("{\"cmd\":\"health\"}");
    assert!(health.contains("\"generation\":2"), "{health}");
    assert!(health.contains("\"reloads_ok\":1"), "{health}");
    assert!(health.contains("\"reloads_failed\":1"), "{health}");
    assert_eq!(client.round_trip(MATCH_FULL), reference);

    // --- Every fault left a trace, and the drain is clean. -----------
    let c = state.counters();
    assert!(c.shed.load(Ordering::Relaxed) >= 1);
    assert_eq!(c.panics.load(Ordering::Relaxed), 1);
    assert!(c.deadline_exceeded.load(Ordering::Relaxed) >= 1);
    assert!(c.slow_client_drops.load(Ordering::Relaxed) >= 1);
    drop(client);
    let drained = server.shutdown();
    assert!(drained.clean, "abandoned {} conns", drained.abandoned_conns);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reload_path_round_trips_through_the_pathless_default() {
    // A server started with a reload path re-reads that file on a
    // pathless reload — the SIGHUP contract — and a reload pointed at a
    // missing file reports the error without dropping the store.
    let json = tiny_export_json();
    let dir = std::env::temp_dir().join(format!("dmsa-serve-hup-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let export_path = dir.join("export.json");
    std::fs::write(&export_path, &json).expect("write export");

    let server = Server::start(
        ServeConfig::default(),
        load_store_gen(&json, "<hup>", 0.01).expect("export loads"),
        Some(export_path.clone()),
    )
    .expect("server starts");
    let mut client = Client::connect(server.local_addr());
    let reference = client.round_trip(MATCH_FULL);

    assert!(client
        .round_trip("{\"cmd\":\"reload\"}")
        .contains("\"generation\":2"));
    assert_eq!(client.round_trip(MATCH_FULL), reference);

    let missing = dir.join("nope.json");
    let reply = client.round_trip(&format!(
        "{{\"cmd\":\"reload\",\"path\":{:?}}}",
        missing.to_str().expect("utf-8 path")
    ));
    assert!(reply.contains("\"error\":\"reload_failed\""), "{reply}");
    assert_eq!(client.round_trip(MATCH_FULL), reference);

    drop(client);
    assert!(server.shutdown().clean);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drain_refuses_new_connections_but_finishes_inflight_work() {
    let json = tiny_export_json();
    let server = Server::start(
        ServeConfig {
            debug_commands: true,
            ..ServeConfig::default()
        },
        load_store_gen(&json, "<drain>", 0.01).expect("export loads"),
        None,
    )
    .expect("server starts");
    let addr = server.local_addr();

    // A request already in flight when the drain starts must complete.
    let mut c = Client::connect(addr);
    c.send("{\"cmd\":\"debug_sleep\",\"ms\":400}");
    std::thread::sleep(Duration::from_millis(100));
    server.request_drain();
    let reply = c.recv();
    assert!(
        reply.contains("\"ok\":true"),
        "in-flight work dropped: {reply}"
    );

    // The same connection gets no further service: either an explicit
    // shutting_down refusal (request raced in before the drain tick) or
    // a straight close — never a served reply.
    let served = c
        .stream
        .write_all(MATCH_FULL.as_bytes())
        .and_then(|()| c.stream.write_all(b"\n"))
        .ok()
        .map(|()| {
            let mut reply = String::new();
            let _ = c.reader.read_line(&mut reply);
            reply
        });
    match served {
        None => {}                    // write failed: closed
        Some(r) if r.is_empty() => {} // EOF: closed
        Some(r) => assert!(
            r.contains("\"error\":\"shutting_down\""),
            "drained server served a request: {r}"
        ),
    }
    drop(c);
    // ...and the drain completes clean.
    assert!(server.shutdown().clean);
}
