//! `dmsa serve` — a fault-hardened concurrent analysis service.
//!
//! One process loads a campaign export through the lenient quarantine
//! loader, builds a single shared [`SharedPrepared`] index, and answers
//! newline-delimited-JSON queries over TCP. The design goals, in order:
//!
//! 1. **The process survives.** Request handlers run under
//!    `catch_unwind`; a panicking request becomes an `internal_error`
//!    reply and a counter bump, never a dead server. Slow or vanished
//!    clients hit write timeouts and are dropped, never block a thread
//!    forever.
//! 2. **Overload is explicit.** Admission is bounded two ways — a
//!    connection cap (excess connections get one `overloaded` line and
//!    are closed) and an in-flight request cap (excess requests on live
//!    connections get an `overloaded` reply immediately instead of
//!    queueing without bound). Clients always learn *why* they were
//!    refused.
//! 3. **Reload is atomic.** A reload (SIGHUP or `reload` command) loads
//!    and validates the new export off the serving path, builds a fresh
//!    prepared store, and swaps it into a [`StoreSwap`] in one atomic
//!    step. In-flight requests keep the generation they started with; a
//!    failed load rolls back to the old store and records the error.
//! 4. **Shutdown drains.** SIGTERM (or the `shutdown` command) stops
//!    accepting, lets in-flight work finish up to a drain deadline, and
//!    exits cleanly.
//!
//! ## Line protocol
//!
//! One JSON object per line, one reply line per request:
//!
//! ```text
//! -> {"cmd":"health"}
//! <- {"ok":true,"cmd":"health","generation":1,...}
//! -> {"cmd":"match","method":"rm2"}
//! <- {"ok":true,"cmd":"match","method":"rm2","matched_jobs":17,...}
//! -> {"cmd":"analyze","report":"summary"}
//! <- {"ok":true,"cmd":"analyze","report":"summary","text":"jobs 100..."}
//! -> {"cmd":"reload","path":"new-campaign.json"}
//! <- {"ok":true,"cmd":"reload","generation":2}
//! ```
//!
//! Failure replies are `{"ok":false,"error":E}` with `E` one of
//! `overloaded`, `deadline_exceeded`, `bad_request`, `internal_error`,
//! `reload_failed`, `shutting_down` (plus a human `detail` where it
//! helps). The current store generation appears **only** in the `health`
//! reply, so `match`/`analyze` replies are byte-comparable across
//! reloads of identical content — the property the hot-reload atomicity
//! test locks.

use crate::export::CampaignExport;
use crate::json::{self, push_str_lit};
use crate::run::{matchset_to_json, MatcherChoice};
use crate::signals;
use dmsa_core::{MatchMethod, MatchSet, ScoredMatcher, SharedPrepared, StoreSwap};
use dmsa_gridnet::HealthSummary;
use dmsa_rucio_sim::TransferPathStats;
use dmsa_simcore::interval::Interval;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// How many jobs a `match` request processes between deadline checks.
/// Cancellation is cooperative; this bounds how far past the deadline a
/// request can run.
const DEADLINE_STRIDE: usize = 1024;

/// How long connection threads and the accept loop sleep between polls
/// of the drain/reload/readable state. Bounds signal-to-action latency.
const POLL_TICK: Duration = Duration::from_millis(25);

/// Tunables for [`Server::start`]. `Default` gives conservative values
/// sized for the CI smoke and the bench harness; the CLI maps flags onto
/// these.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Maximum concurrently *executing* requests before shedding.
    pub max_inflight: usize,
    /// Maximum live connections before new ones are refused.
    pub max_conns: usize,
    /// Per-request compute deadline.
    pub deadline: Duration,
    /// Per-reply socket write timeout (slow-client guard).
    pub write_timeout: Duration,
    /// How long shutdown waits for in-flight connections to finish.
    pub drain_deadline: Duration,
    /// Reloads refuse an export whose quarantined-record fraction
    /// exceeds this (a mostly-corrupt replacement must not evict a
    /// healthy store).
    pub max_quarantine_frac: f64,
    /// Maximum request-line length the server will buffer. A longer
    /// line gets a structured `bad_request` reply, its remainder is
    /// discarded through the terminating newline, and the connection
    /// stays usable — one hostile or buggy client line must not balloon
    /// server memory or cost the client its session.
    pub max_line_bytes: usize,
    /// Poll the process-global signal latches (SIGTERM drain, SIGHUP
    /// reload). Off in unit tests, on under the CLI.
    pub watch_signals: bool,
    /// Enable `debug_panic` / `debug_sleep` fault-injection commands.
    pub debug_commands: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            max_inflight: thread::available_parallelism().map_or(4, |n| n.get()),
            max_conns: 1024,
            deadline: Duration::from_secs(10),
            write_timeout: Duration::from_secs(5),
            drain_deadline: Duration::from_secs(5),
            max_quarantine_frac: 0.01,
            max_line_bytes: 1 << 20,
            watch_signals: false,
            debug_commands: false,
        }
    }
}

/// One immutable store generation: everything a request reads, owned
/// together so the [`StoreSwap`] can retire it as a unit when the last
/// in-flight reader drops.
pub struct StoreGen {
    /// The shared prepared index (owns the store).
    pub shared: SharedPrepared,
    /// Observation window of the export.
    pub window: Interval,
    /// Transfer-path counters of the export.
    pub path_stats: TransferPathStats,
    /// Breaker telemetry of the export, when armed.
    pub health: Option<HealthSummary>,
    /// Where this generation was loaded from (display only).
    pub source: String,
    /// Records the lenient loader quarantined while loading it.
    pub quarantined: u64,
}

/// Parse + validate + index an export into a servable [`StoreGen`].
///
/// This is the *whole* reload path minus the swap: strict format-version
/// checking and record quarantine happen inside `from_json_lenient`, the
/// quarantine fraction is checked against `max_quarantine_frac`, and the
/// prepared index is built — all before the caller decides to swap. Any
/// `Err` here therefore leaves a running server untouched.
pub fn load_store_gen(
    campaign_json: &str,
    source: &str,
    max_quarantine_frac: f64,
) -> Result<StoreGen, String> {
    let loaded = CampaignExport::from_json_lenient(campaign_json)?;
    let quarantined = loaded.quarantine.total();
    if quarantined > 0 {
        let (jobs, files, transfers, _) = loaded.export.store.counts();
        let kept = (jobs + files + transfers) as u64;
        let frac = quarantined as f64 / (kept + quarantined).max(1) as f64;
        if frac > max_quarantine_frac {
            return Err(format!(
                "refusing export {source}: {quarantined} quarantined record(s) \
                 ({:.2}% > {:.2}% allowed): {}",
                100.0 * frac,
                100.0 * max_quarantine_frac,
                loaded.quarantine.one_line()
            ));
        }
    }
    let export = loaded.export;
    Ok(StoreGen {
        shared: SharedPrepared::build(export.store),
        window: export.window,
        path_stats: export.path_stats,
        health: export.health,
        source: source.to_string(),
        quarantined,
    })
}

/// Monotonic counters exposed through the `health` reply. All relaxed:
/// they are telemetry, not synchronization.
#[derive(Default)]
pub struct Counters {
    /// Requests answered with `"ok":true`.
    pub served: AtomicU64,
    /// Requests refused with `overloaded` (either cap).
    pub shed: AtomicU64,
    /// Unparseable or unknown requests.
    pub bad_requests: AtomicU64,
    /// Request handlers that panicked (and were contained).
    pub panics: AtomicU64,
    /// Requests cancelled at their deadline.
    pub deadline_exceeded: AtomicU64,
    /// Connections dropped because the client read too slowly (write
    /// timeout) or vanished mid-reply.
    pub slow_client_drops: AtomicU64,
    /// Reloads that swapped a new generation in.
    pub reloads_ok: AtomicU64,
    /// Reloads rejected with the old generation left serving.
    pub reloads_failed: AtomicU64,
}

/// Shared mutable state of a running server.
pub struct ServeState {
    swap: StoreSwap<StoreGen>,
    counters: Counters,
    /// Set to stop accepting and drain.
    draining: AtomicBool,
    /// Per-server reload latch (the signal latch is process-global; this
    /// one lets tests and the `reload` command target one server).
    reload_requested: AtomicBool,
    /// Serializes reloads so two never interleave load-then-swap.
    reload_lock: Mutex<()>,
    /// Path re-read on pathless reloads; updated by `reload` with a path.
    reload_path: Mutex<Option<PathBuf>>,
    last_reload_error: Mutex<Option<String>>,
    live_conns: AtomicUsize,
    inflight: AtomicUsize,
    started: Instant,
}

impl ServeState {
    fn new(initial: StoreGen, reload_path: Option<PathBuf>) -> ServeState {
        ServeState {
            swap: StoreSwap::new(initial),
            counters: Counters::default(),
            draining: AtomicBool::new(false),
            reload_requested: AtomicBool::new(false),
            reload_lock: Mutex::new(()),
            reload_path: Mutex::new(reload_path),
            last_reload_error: Mutex::new(None),
            live_conns: AtomicUsize::new(0),
            inflight: AtomicUsize::new(0),
            started: Instant::now(),
        }
    }

    /// Current generation counter (bumped by every successful reload).
    pub fn generation(&self) -> u64 {
        self.swap.generation()
    }

    /// Counter block (for assertions and the drain summary).
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Is the server draining?
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::Relaxed)
    }

    /// Reload now, synchronously: load + validate `path` (or the stored
    /// reload path), then atomically swap on success. Serialized; the
    /// serving path never blocks on this. Returns the new generation.
    pub fn reload(&self, cfg: &ServeConfig, path: Option<&PathBuf>) -> Result<u64, String> {
        let _guard = self.reload_lock.lock().unwrap();
        let path = match path {
            Some(p) => p.clone(),
            None => self
                .reload_path
                .lock()
                .unwrap()
                .clone()
                .ok_or_else(|| "no reload path configured".to_string())?,
        };
        let outcome = (|| {
            let json = std::fs::read_to_string(&path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            load_store_gen(&json, &path.display().to_string(), cfg.max_quarantine_frac)
        })();
        match outcome {
            Ok(gen) => {
                let (_old, new_gen) = self.swap.swap(gen);
                *self.reload_path.lock().unwrap() = Some(path);
                *self.last_reload_error.lock().unwrap() = None;
                self.counters.reloads_ok.fetch_add(1, Ordering::Relaxed);
                Ok(new_gen)
            }
            Err(e) => {
                *self.last_reload_error.lock().unwrap() = Some(e.clone());
                self.counters.reloads_failed.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }
}

/// Outcome of [`Server::shutdown`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DrainOutcome {
    /// All connections finished inside the drain deadline.
    pub clean: bool,
    /// Connections still open when the deadline expired.
    pub abandoned_conns: usize,
}

/// A running serve instance. Dropping without [`Server::shutdown`]
/// requests a drain and waits for the accept thread (test convenience);
/// the CLI calls `shutdown` explicitly for the drain summary.
pub struct Server {
    state: Arc<ServeState>,
    cfg: ServeConfig,
    local_addr: SocketAddr,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the accept loop, and return. `reload_path` is what a
    /// pathless `reload`/SIGHUP re-reads.
    pub fn start(
        cfg: ServeConfig,
        initial: StoreGen,
        reload_path: Option<PathBuf>,
    ) -> Result<Server, String> {
        let listener =
            TcpListener::bind(&cfg.addr).map_err(|e| format!("binding {}: {e}", cfg.addr))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("set_nonblocking: {e}"))?;
        let state = Arc::new(ServeState::new(initial, reload_path));
        let accept_state = Arc::clone(&state);
        let accept_cfg = cfg.clone();
        let accept_thread = thread::Builder::new()
            .name("dmsa-serve-accept".into())
            .spawn(move || accept_loop(listener, accept_state, accept_cfg))
            .map_err(|e| format!("spawning accept loop: {e}"))?;
        Ok(Server {
            state,
            cfg,
            local_addr,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves `:0` to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Shared state handle (tests read counters through this).
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// Begin draining: stop accepting, let in-flight requests finish.
    pub fn request_drain(&self) {
        self.state.draining.store(true, Ordering::Relaxed);
    }

    /// Latch a reload for the accept loop to perform.
    pub fn request_reload(&self) {
        self.state.reload_requested.store(true, Ordering::Relaxed);
    }

    /// Drain and wait: returns once all connections closed or the drain
    /// deadline expired (whichever first).
    pub fn shutdown(mut self) -> DrainOutcome {
        self.request_drain();
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        let deadline = Instant::now() + self.cfg.drain_deadline;
        while self.state.live_conns.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        let abandoned = self.state.live_conns.load(Ordering::Acquire);
        DrainOutcome {
            clean: abandoned == 0,
            abandoned_conns: abandoned,
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.request_drain();
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

/// Accept loop: polls for connections, signal latches, and reload
/// requests until draining. Runs on its own thread.
fn accept_loop(listener: TcpListener, state: Arc<ServeState>, cfg: ServeConfig) {
    loop {
        if cfg.watch_signals && signals::termination_requested() {
            state.draining.store(true, Ordering::Relaxed);
        }
        if state.draining.load(Ordering::Relaxed) {
            return;
        }
        if cfg.watch_signals && signals::take_reload_request() {
            state.reload_requested.store(true, Ordering::Relaxed);
        }
        if state.reload_requested.swap(false, Ordering::Relaxed) {
            // Off the serving path by construction: requests never wait
            // on this thread. Outcome lands in counters + health.
            let _ = state.reload(&cfg, None);
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if state.live_conns.load(Ordering::Acquire) >= cfg.max_conns {
                    shed_connection(stream, &state, &cfg);
                    continue;
                }
                state.live_conns.fetch_add(1, Ordering::AcqRel);
                let conn_state = Arc::clone(&state);
                let conn_cfg = cfg.clone();
                let spawned =
                    thread::Builder::new()
                        .name("dmsa-serve-conn".into())
                        .spawn(move || {
                            handle_connection(stream, &conn_state, &conn_cfg);
                            conn_state.live_conns.fetch_sub(1, Ordering::AcqRel);
                        });
                if spawned.is_err() {
                    // Thread exhaustion is overload by another name.
                    state.live_conns.fetch_sub(1, Ordering::AcqRel);
                    state.counters.shed.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL_TICK),
            Err(_) => thread::sleep(POLL_TICK),
        }
    }
}

/// Refuse a connection over the cap: one `overloaded` line, then close.
/// Best-effort — a client that won't read its refusal is simply dropped.
fn shed_connection(mut stream: TcpStream, state: &Arc<ServeState>, cfg: &ServeConfig) {
    state.counters.shed.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_write_timeout(Some(cfg.write_timeout));
    let _ = stream
        .write_all(b"{\"ok\":false,\"error\":\"overloaded\",\"detail\":\"connection limit\"}\n");
}

/// Per-connection loop: read request lines, answer each, until EOF,
/// drain, or a dead/slow client.
fn handle_connection(mut stream: TcpStream, state: &Arc<ServeState>, cfg: &ServeConfig) {
    // Short read timeout so the thread observes drain within a tick even
    // when the client is idle; write timeout guards against clients that
    // stop reading mid-reply.
    let _ = stream.set_read_timeout(Some(POLL_TICK));
    let _ = stream.set_write_timeout(Some(cfg.write_timeout));
    let _ = stream.set_nodelay(true);

    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    // True while swallowing the tail of an over-long request line (the
    // reply already went out; the line itself is unusable).
    let mut discarding = false;
    loop {
        // Serve any complete lines already buffered.
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=pos).collect();
            if discarding {
                // The newline ends the oversized line; the connection
                // is back in sync from here.
                discarding = false;
                continue;
            }
            let line = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
            if line.trim().is_empty() {
                continue;
            }
            let reply = serve_request(&line, state, cfg);
            if !write_reply(&mut stream, &reply, state) {
                return;
            }
        }
        if discarding {
            buf.clear(); // still mid-line: drop the partial tail
        } else if buf.len() > cfg.max_line_bytes {
            state.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
            let reply = err_reply(
                "bad_request",
                Some(&format!(
                    "request line exceeds {} bytes",
                    cfg.max_line_bytes
                )),
            );
            if !write_reply(&mut stream, &reply, state) {
                return;
            }
            buf.clear();
            discarding = true;
        }
        if state.draining.load(Ordering::Relaxed) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // EOF
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue; // idle tick — re-check drain
            }
            Err(_) => return,
        }
    }
}

/// Write one reply line. Returns false (and counts the drop) if the
/// client is too slow or gone — the caller closes the connection; the
/// process carries on.
fn write_reply(stream: &mut TcpStream, reply: &str, state: &Arc<ServeState>) -> bool {
    let mut framed = String::with_capacity(reply.len() + 1);
    framed.push_str(reply);
    framed.push('\n');
    match stream
        .write_all(framed.as_bytes())
        .and_then(|()| stream.flush())
    {
        Ok(()) => true,
        Err(e) => {
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::BrokenPipe
            ) {
                state
                    .counters
                    .slow_client_drops
                    .fetch_add(1, Ordering::Relaxed);
            }
            false
        }
    }
}

/// Admission + panic containment around one request.
fn serve_request(line: &str, state: &Arc<ServeState>, cfg: &ServeConfig) -> String {
    if state.draining.load(Ordering::Relaxed) {
        return err_reply("shutting_down", None);
    }
    // Admission: take an in-flight permit or shed. The counter is the
    // entire "queue" — bounded at zero depth, so overload turns into an
    // immediate explicit refusal instead of unbounded latency.
    let admitted = state
        .inflight
        .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
            (n < cfg.max_inflight).then_some(n + 1)
        })
        .is_ok();
    if !admitted {
        state.counters.shed.fetch_add(1, Ordering::Relaxed);
        return err_reply("overloaded", Some("in-flight request limit"));
    }
    let result = catch_unwind(AssertUnwindSafe(|| handle_request(line, state, cfg)));
    state.inflight.fetch_sub(1, Ordering::AcqRel);
    match result {
        Ok(reply) => reply,
        Err(_) => {
            state.counters.panics.fetch_add(1, Ordering::Relaxed);
            err_reply("internal_error", Some("request handler panicked"))
        }
    }
}

fn err_reply(error: &str, detail: Option<&str>) -> String {
    let mut o = String::from("{\"ok\":false,\"error\":");
    push_str_lit(&mut o, error);
    if let Some(d) = detail {
        o.push_str(",\"detail\":");
        push_str_lit(&mut o, d);
    }
    o.push('}');
    o
}

/// Dispatch one parsed request. Runs inside the permit + catch_unwind.
fn handle_request(line: &str, state: &Arc<ServeState>, cfg: &ServeConfig) -> String {
    let req = match json::parse(line) {
        Ok(j) => j,
        Err(e) => {
            state.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
            return err_reply("bad_request", Some(&format!("parse: {e}")));
        }
    };
    let Some(cmd) = req.get("cmd").and_then(|c| c.as_str()) else {
        state.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
        return err_reply("bad_request", Some("missing \"cmd\""));
    };
    let deadline = Instant::now() + cfg.deadline;
    let reply = match cmd {
        "health" => Ok(health_reply(state)),
        "match" => handle_match(&req, state, deadline),
        "analyze" => handle_analyze(&req, state, deadline),
        "reload" => handle_reload(&req, state, cfg),
        "shutdown" => {
            state.draining.store(true, Ordering::Relaxed);
            Ok("{\"ok\":true,\"cmd\":\"shutdown\",\"draining\":true}".to_string())
        }
        "debug_panic" if cfg.debug_commands => {
            panic!("injected panic (debug_panic)");
        }
        "debug_sleep" if cfg.debug_commands => {
            let ms = req.get("ms").and_then(|m| m.as_u64()).unwrap_or(100);
            let until = Instant::now() + Duration::from_millis(ms);
            // Sleep in slices so the deadline still cancels us.
            loop {
                let now = Instant::now();
                if now >= until {
                    break Ok("{\"ok\":true,\"cmd\":\"debug_sleep\"}".to_string());
                }
                if now >= deadline {
                    break Err(err_reply("deadline_exceeded", None));
                }
                thread::sleep(POLL_TICK.min(until - now));
            }
        }
        other => {
            state.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
            return err_reply("bad_request", Some(&format!("unknown cmd {other:?}")));
        }
    };
    match reply {
        Ok(r) => {
            state.counters.served.fetch_add(1, Ordering::Relaxed);
            r
        }
        Err(r) => {
            if r.contains("\"deadline_exceeded\"") {
                state
                    .counters
                    .deadline_exceeded
                    .fetch_add(1, Ordering::Relaxed);
            }
            r
        }
    }
}

/// Run the chosen matcher over `gen` with cooperative deadline checks
/// every [`DEADLINE_STRIDE`] jobs. Job order equals
/// [`dmsa_core::PreparedStore::match_window`], so the result is
/// byte-identical to the offline `dmsa match` path.
fn match_with_deadline(
    gen: &StoreGen,
    choice: MatcherChoice,
    deadline: Instant,
) -> Result<MatchSet, ()> {
    let prepared = gen.shared.prepared();
    let method = match choice {
        MatcherChoice::Exact => MatchMethod::Exact,
        MatcherChoice::Rm1 => MatchMethod::Rm1,
        MatcherChoice::Rm2 => MatchMethod::Rm2,
        MatcherChoice::Scored(t) => {
            if Instant::now() > deadline {
                return Err(());
            }
            // The scored matcher has no incremental API; it runs whole
            // and the deadline is checked after (coarse cancellation).
            let set = ScoredMatcher::default().match_jobs_scored(gen.shared.store(), gen.window, t);
            return if Instant::now() > deadline {
                Err(())
            } else {
                Ok(set)
            };
        }
    };
    let universe = prepared.window_universe(gen.window);
    let mut jobs = Vec::new();
    for chunk in universe.chunks(DEADLINE_STRIDE) {
        if Instant::now() > deadline {
            return Err(());
        }
        jobs.extend(chunk.iter().filter_map(|&j| prepared.match_one(j, method)));
    }
    Ok(MatchSet { method, jobs })
}

fn handle_match(
    req: &json::Json,
    state: &Arc<ServeState>,
    deadline: Instant,
) -> Result<String, String> {
    let method_str = req.get("method").and_then(|m| m.as_str()).unwrap_or("rm2");
    let choice = match MatcherChoice::parse(method_str) {
        Ok(c) => c,
        Err(e) => {
            state.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
            return Err(err_reply("bad_request", Some(&e)));
        }
    };
    let full = req.get("full").and_then(|f| f.as_bool()).unwrap_or(false);
    // Pin a generation for the whole request: a reload mid-request swaps
    // the slot but this Arc keeps the old store alive and consistent.
    let (gen, _g) = state.swap.load();
    let set = match match_with_deadline(&gen, choice, deadline) {
        Ok(s) => s,
        Err(()) => return Err(err_reply("deadline_exceeded", None)),
    };
    let mut o = String::from("{\"ok\":true,\"cmd\":\"match\",\"method\":");
    push_str_lit(&mut o, method_str);
    o.push_str(&format!(
        ",\"matched_jobs\":{},\"matched_transfers\":{}",
        set.n_matched_jobs(),
        set.n_matched_transfers()
    ));
    if full {
        o.push_str(",\"set\":");
        o.push_str(&matchset_to_json(&set));
    }
    o.push('}');
    Ok(o)
}

fn handle_analyze(
    req: &json::Json,
    state: &Arc<ServeState>,
    deadline: Instant,
) -> Result<String, String> {
    let Some(report) = req.get("report").and_then(|r| r.as_str()) else {
        state.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
        return Err(err_reply("bad_request", Some("missing \"report\"")));
    };
    if !dmsa_analysis::render::REPORT_NAMES.contains(&report) {
        state.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
        return Err(err_reply(
            "bad_request",
            Some(&format!(
                "unknown report {report:?} ({})",
                dmsa_analysis::render::REPORT_NAMES.join("|")
            )),
        ));
    }
    let (gen, _g) = state.swap.load();
    // Optional "method": co-compute a match set so the summary report
    // carries its overlap/activity tables, as the CLI does with a
    // --matches file.
    let matches = match req.get("method").and_then(|m| m.as_str()) {
        None => None,
        Some(m) => {
            let choice = match MatcherChoice::parse(m) {
                Ok(c) => c,
                Err(e) => {
                    state.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
                    return Err(err_reply("bad_request", Some(&e)));
                }
            };
            match match_with_deadline(&gen, choice, deadline) {
                Ok(s) => Some(s),
                Err(()) => return Err(err_reply("deadline_exceeded", None)),
            }
        }
    };
    if Instant::now() > deadline {
        return Err(err_reply("deadline_exceeded", None));
    }
    let inputs = dmsa_analysis::render::ReportInputs {
        store: gen.shared.store(),
        window: gen.window,
        path_stats: gen.path_stats,
        health: gen.health.as_ref(),
    };
    let text = dmsa_analysis::render::render_report_string(&inputs, report, matches.as_ref(), None)
        .map_err(|e| err_reply("internal_error", Some(&e)))?;
    let mut o = String::from("{\"ok\":true,\"cmd\":\"analyze\",\"report\":");
    push_str_lit(&mut o, report);
    o.push_str(",\"text\":");
    push_str_lit(&mut o, &text);
    o.push('}');
    Ok(o)
}

fn handle_reload(
    req: &json::Json,
    state: &Arc<ServeState>,
    cfg: &ServeConfig,
) -> Result<String, String> {
    let path = req.get("path").and_then(|p| p.as_str()).map(PathBuf::from);
    match state.reload(cfg, path.as_ref()) {
        Ok(generation) => Ok(format!(
            "{{\"ok\":true,\"cmd\":\"reload\",\"generation\":{generation}}}"
        )),
        Err(e) => Err(err_reply("reload_failed", Some(&e))),
    }
}

/// Render the `health` reply: generation, store shape, counters, reload
/// history. The only reply that carries the generation, by design.
fn health_reply(state: &Arc<ServeState>) -> String {
    let (gen, generation) = state.swap.load();
    let (jobs, files, transfers, _) = gen.shared.store().counts();
    let c = &state.counters;
    let mut o = String::with_capacity(512);
    o.push_str("{\"ok\":true,\"cmd\":\"health\"");
    o.push_str(&format!(",\"generation\":{generation}"));
    o.push_str(&format!(
        ",\"uptime_ms\":{}",
        state.started.elapsed().as_millis()
    ));
    o.push_str(&format!(
        ",\"draining\":{}",
        state.draining.load(Ordering::Relaxed)
    ));
    o.push_str(",\"store\":{");
    o.push_str(&format!(
        "\"jobs\":{jobs},\"files\":{files},\"transfers\":{transfers}"
    ));
    o.push_str(&format!(",\"quarantined\":{}", gen.quarantined));
    o.push_str(&format!(
        ",\"window_ms\":[{},{}]",
        gen.window.start.as_millis(),
        gen.window.end.as_millis()
    ));
    o.push_str(",\"source\":");
    push_str_lit(&mut o, &gen.source);
    o.push_str("},\"counters\":{");
    let pairs: [(&str, u64); 8] = [
        ("served", c.served.load(Ordering::Relaxed)),
        ("shed", c.shed.load(Ordering::Relaxed)),
        ("bad_requests", c.bad_requests.load(Ordering::Relaxed)),
        ("panics", c.panics.load(Ordering::Relaxed)),
        (
            "deadline_exceeded",
            c.deadline_exceeded.load(Ordering::Relaxed),
        ),
        (
            "slow_client_drops",
            c.slow_client_drops.load(Ordering::Relaxed),
        ),
        ("reloads_ok", c.reloads_ok.load(Ordering::Relaxed)),
        ("reloads_failed", c.reloads_failed.load(Ordering::Relaxed)),
    ];
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push_str(&format!("\"{k}\":{v}"));
    }
    o.push_str("},\"reload\":{\"last_error\":");
    match &*state.last_reload_error.lock().unwrap() {
        Some(e) => push_str_lit(&mut o, e),
        None => o.push_str("null"),
    }
    o.push_str("}}");
    o
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;
    use std::io::BufReader;

    fn tiny_export_json() -> String {
        let mut c = dmsa_scenario::ScenarioConfig::small();
        c.duration = dmsa_simcore::SimDuration::from_hours(3);
        c.workload.tasks_per_hour = 10.0;
        c.background_transfers_per_hour = 50.0;
        c.initial_datasets = 20;
        let campaign = dmsa_scenario::run(&c);
        CampaignExport::from_campaign(&campaign).to_json()
    }

    fn test_gen(json: &str) -> StoreGen {
        load_store_gen(json, "<test>", 0.01).expect("tiny export loads")
    }

    fn test_server(cfg: ServeConfig) -> (Server, String) {
        let json = tiny_export_json();
        let server = Server::start(cfg, test_gen(&json), None).expect("server starts");
        (server, json)
    }

    struct Client {
        stream: TcpStream,
        reader: BufReader<TcpStream>,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Client {
            let stream = TcpStream::connect(addr).expect("connect");
            stream
                .set_read_timeout(Some(Duration::from_secs(20)))
                .unwrap();
            let reader = BufReader::new(stream.try_clone().unwrap());
            Client { stream, reader }
        }

        fn send(&mut self, line: &str) {
            self.stream.write_all(line.as_bytes()).unwrap();
            self.stream.write_all(b"\n").unwrap();
        }

        fn recv(&mut self) -> String {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("read reply");
            line.trim_end().to_string()
        }

        fn round_trip(&mut self, line: &str) -> String {
            self.send(line);
            self.recv()
        }
    }

    #[test]
    fn health_match_analyze_round_trip() {
        let (server, _) = test_server(ServeConfig::default());
        let mut c = Client::connect(server.local_addr());

        let health = c.round_trip("{\"cmd\":\"health\"}");
        assert!(health.contains("\"ok\":true"), "{health}");
        assert!(health.contains("\"generation\":1"), "{health}");

        let m = c.round_trip("{\"cmd\":\"match\",\"method\":\"rm2\"}");
        assert!(m.contains("\"ok\":true"), "{m}");
        assert!(m.contains("\"matched_jobs\":"), "{m}");

        for report in dmsa_analysis::render::REPORT_NAMES {
            let a = c.round_trip(&format!("{{\"cmd\":\"analyze\",\"report\":\"{report}\"}}"));
            assert!(a.contains("\"ok\":true"), "report {report}: {a}");
        }

        let bad = c.round_trip("{\"cmd\":\"analyze\",\"report\":\"pie\"}");
        assert!(bad.contains("\"bad_request\""), "{bad}");
        let garbage = c.round_trip("not json");
        assert!(garbage.contains("\"bad_request\""), "{garbage}");

        let out = server.shutdown();
        assert!(out.clean, "drain left {} conns", out.abandoned_conns);
    }

    #[test]
    fn oversized_request_line_gets_a_reply_and_keeps_the_connection() {
        let cfg = ServeConfig {
            max_line_bytes: 256,
            ..ServeConfig::default()
        };
        let (server, _) = test_server(cfg);
        let mut c = Client::connect(server.local_addr());

        // 4 KiB of garbage on one line (larger than the server's read
        // chunk, so it cannot sneak through as a normal parse error):
        // structured refusal, not a hangup, not unbounded buffering.
        let huge = "x".repeat(4096);
        let reply = c.round_trip(&huge);
        assert!(reply.contains("\"bad_request\""), "{reply}");
        assert!(reply.contains("exceeds 256 bytes"), "{reply}");

        // The same connection still serves the next request.
        let health = c.round_trip("{\"cmd\":\"health\"}");
        assert!(health.contains("\"ok\":true"), "{health}");
        let out = server.shutdown();
        assert!(out.clean, "drain left {} conns", out.abandoned_conns);
    }

    #[test]
    fn match_replies_agree_with_offline_matcher() {
        let (server, json) = test_server(ServeConfig::default());
        let export = CampaignExport::from_json(&json).unwrap();
        let prepared = dmsa_core::PreparedStore::build(&export.store);
        let offline = matchset_to_json(&prepared.match_window(export.window, MatchMethod::Rm2));

        let mut c = Client::connect(server.local_addr());
        let reply = c.round_trip("{\"cmd\":\"match\",\"method\":\"rm2\",\"full\":true}");
        let parsed = json::parse(&reply).expect("reply parses");
        assert_eq!(parsed.get("ok").and_then(|o| o.as_bool()), Some(true));
        // The served set serializes byte-identically to the offline path.
        let set_start = reply.find("\"set\":").expect("full reply carries set") + 6;
        let served = &reply[set_start..reply.len() - 1];
        assert_eq!(served, offline);
        drop(server);
    }

    #[test]
    fn overload_sheds_with_explicit_reply() {
        let cfg = ServeConfig {
            max_inflight: 1,
            debug_commands: true,
            ..ServeConfig::default()
        };
        let (server, _) = test_server(cfg);
        let addr = server.local_addr();

        let mut slow = Client::connect(addr);
        slow.send("{\"cmd\":\"debug_sleep\",\"ms\":1500}");
        // Give the sleeper time to take the only permit.
        thread::sleep(Duration::from_millis(300));

        let mut probe = Client::connect(addr);
        let reply = probe.round_trip("{\"cmd\":\"health\"}");
        assert!(
            reply.contains("\"error\":\"overloaded\""),
            "expected shed, got {reply}"
        );
        assert!(server.state().counters().shed.load(Ordering::Relaxed) >= 1);

        // The sleeper finishes; capacity returns.
        let done = slow.recv();
        assert!(done.contains("\"ok\":true"), "{done}");
        let after = probe.round_trip("{\"cmd\":\"health\"}");
        assert!(after.contains("\"ok\":true"), "{after}");
        drop(server);
    }

    #[test]
    fn panicking_request_is_contained() {
        let cfg = ServeConfig {
            debug_commands: true,
            ..ServeConfig::default()
        };
        let (server, _) = test_server(cfg);
        let mut c = Client::connect(server.local_addr());

        let reply = c.round_trip("{\"cmd\":\"debug_panic\"}");
        assert!(reply.contains("\"internal_error\""), "{reply}");
        assert_eq!(server.state().counters().panics.load(Ordering::Relaxed), 1);

        // Same connection still serves; the process obviously survived.
        let health = c.round_trip("{\"cmd\":\"health\"}");
        assert!(health.contains("\"ok\":true"), "{health}");
        assert!(health.contains("\"panics\":1"), "{health}");
        drop(server);
    }

    #[test]
    fn deadline_cancels_slow_requests() {
        let cfg = ServeConfig {
            deadline: Duration::from_millis(100),
            debug_commands: true,
            ..ServeConfig::default()
        };
        let (server, _) = test_server(cfg);
        let mut c = Client::connect(server.local_addr());
        let reply = c.round_trip("{\"cmd\":\"debug_sleep\",\"ms\":5000}");
        assert!(reply.contains("\"deadline_exceeded\""), "{reply}");
        assert!(
            server
                .state()
                .counters()
                .deadline_exceeded
                .load(Ordering::Relaxed)
                >= 1
        );
        drop(server);
    }

    #[test]
    fn failed_reload_rolls_back_and_reports() {
        let dir = std::env::temp_dir().join(format!("dmsa-serve-reload-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let corrupt = dir.join("corrupt.json");
        std::fs::write(&corrupt, "{\"version\":999,\"nope\":").unwrap();

        let (server, _) = test_server(ServeConfig::default());
        let mut c = Client::connect(server.local_addr());
        let before = c.round_trip("{\"cmd\":\"match\",\"method\":\"rm1\",\"full\":true}");

        let reply = c.round_trip(&format!("{{\"cmd\":\"reload\",\"path\":{}}}", {
            let mut p = String::new();
            push_str_lit(&mut p, &corrupt.display().to_string());
            p
        }));
        assert!(reply.contains("\"reload_failed\""), "{reply}");

        // Old generation still serving, byte-identically.
        let health = c.round_trip("{\"cmd\":\"health\"}");
        assert!(health.contains("\"generation\":1"), "{health}");
        assert!(health.contains("\"reloads_failed\":1"), "{health}");
        assert!(health.contains("\"last_error\":\""), "{health}");
        let after = c.round_trip("{\"cmd\":\"match\",\"method\":\"rm1\",\"full\":true}");
        assert_eq!(before, after);
        drop(server);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn successful_reload_bumps_generation_and_swaps_store() {
        let dir = std::env::temp_dir().join(format!("dmsa-serve-swap-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let json = tiny_export_json();
        let path = dir.join("campaign.json");
        std::fs::write(&path, &json).unwrap();

        let server =
            Server::start(ServeConfig::default(), test_gen(&json), Some(path.clone())).unwrap();
        let mut c = Client::connect(server.local_addr());

        // Pathless reload re-reads the configured path.
        let reply = c.round_trip("{\"cmd\":\"reload\"}");
        assert!(reply.contains("\"generation\":2"), "{reply}");
        let health = c.round_trip("{\"cmd\":\"health\"}");
        assert!(health.contains("\"generation\":2"), "{health}");
        assert!(health.contains("\"reloads_ok\":1"), "{health}");

        // Same content → match replies identical across the swap.
        let a = c.round_trip("{\"cmd\":\"match\",\"method\":\"exact\",\"full\":true}");
        let _ = c.round_trip("{\"cmd\":\"reload\"}");
        let b = c.round_trip("{\"cmd\":\"match\",\"method\":\"exact\",\"full\":true}");
        assert_eq!(a, b, "reload of identical content changed replies");
        drop(server);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_drains_and_refuses_new_work() {
        let (server, _) = test_server(ServeConfig::default());
        let addr = server.local_addr();
        let mut c = Client::connect(addr);
        assert!(c.round_trip("{\"cmd\":\"health\"}").contains("\"ok\":true"));

        let reply = c.round_trip("{\"cmd\":\"shutdown\"}");
        assert!(reply.contains("\"draining\":true"), "{reply}");
        let out = server.shutdown();
        assert!(out.clean, "{} conns abandoned", out.abandoned_conns);
        // Accept loop is gone: new connections are refused or dead.
        thread::sleep(Duration::from_millis(50));
        match TcpStream::connect(addr) {
            Err(_) => {}
            Ok(mut s) => {
                let _ = s.write_all(b"{\"cmd\":\"health\"}\n");
                let mut buf = [0u8; 64];
                let _ = s.set_read_timeout(Some(Duration::from_millis(500)));
                let n = s.read(&mut buf).unwrap_or(0);
                assert_eq!(n, 0, "drained server must not serve new connections");
            }
        }
    }

    #[test]
    fn quarantine_threshold_refuses_mostly_corrupt_exports() {
        let json = tiny_export_json();
        // A valid export loads at any threshold.
        assert!(load_store_gen(&json, "<t>", 0.0).is_ok());
        // Garbage is refused with a loader error, not a panic.
        let err = load_store_gen("{\"version\":1", "<t>", 0.5)
            .err()
            .expect("garbage must be refused");
        assert!(!err.is_empty());
    }
}
