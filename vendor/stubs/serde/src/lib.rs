//! Offline compile stub for `serde` 1.x.
//!
//! Traits have real shapes (so custom impls written against this stub
//! also compile against real serde) but no working data formats exist:
//! every serialize/deserialize call reports an error at runtime.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub mod ser {
    /// Error raised by a `Serializer`.
    pub trait Error: Sized + std::fmt::Debug + std::fmt::Display {
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }

    pub use self::Error as SerError;
}

pub mod de {
    /// Error raised by a `Deserializer`.
    pub trait Error: Sized + std::fmt::Debug + std::fmt::Display {
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }

    pub use self::Error as DeError;
}

pub trait Serializer: Sized {
    type Ok;
    type Error: ser::Error;
}

pub trait Deserializer<'de>: Sized {
    type Error: de::Error;
}

pub trait Serialize {
    fn serialize<S>(&self, serializer: S) -> Result<S::Ok, S::Error>
    where
        S: Serializer;
}

pub trait Deserialize<'de>: Sized {
    fn deserialize<D>(deserializer: D) -> Result<Self, D::Error>
    where
        D: Deserializer<'de>;
}

pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

macro_rules! stub_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, _s: S) -> Result<S::Ok, S::Error> {
                Err(<S::Error as ser::Error>::custom("offline serde stub"))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<DE: Deserializer<'de>>(_d: DE) -> Result<Self, DE::Error> {
                Err(<DE::Error as de::Error>::custom("offline serde stub"))
            }
        }
    )*};
}

stub_impls!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, char, String
);

impl Serialize for str {
    fn serialize<S: Serializer>(&self, _s: S) -> Result<S::Ok, S::Error> {
        Err(<S::Error as ser::Error>::custom("offline serde stub"))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, _s: S) -> Result<S::Ok, S::Error> {
        Err(<S::Error as ser::Error>::custom("offline serde stub"))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<DE: Deserializer<'de>>(_d: DE) -> Result<Self, DE::Error> {
        Err(<DE::Error as de::Error>::custom("offline serde stub"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, _s: S) -> Result<S::Ok, S::Error> {
        Err(<S::Error as ser::Error>::custom("offline serde stub"))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<DE: Deserializer<'de>>(_d: DE) -> Result<Self, DE::Error> {
        Err(<DE::Error as de::Error>::custom("offline serde stub"))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        T::deserialize(d).map(Box::new)
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for std::collections::HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, _s: S) -> Result<S::Ok, S::Error> {
        Err(<S::Error as ser::Error>::custom("offline serde stub"))
    }
}

impl<'de, K, V, H> Deserialize<'de> for std::collections::HashMap<K, V, H>
where
    K: Deserialize<'de>,
    V: Deserialize<'de>,
    H: Default,
{
    fn deserialize<DE: Deserializer<'de>>(_d: DE) -> Result<Self, DE::Error> {
        Err(<DE::Error as de::Error>::custom("offline serde stub"))
    }
}

impl<T: Serialize, H> Serialize for std::collections::HashSet<T, H> {
    fn serialize<S: Serializer>(&self, _s: S) -> Result<S::Ok, S::Error> {
        Err(<S::Error as ser::Error>::custom("offline serde stub"))
    }
}

impl<'de, T: Deserialize<'de>, H: Default> Deserialize<'de> for std::collections::HashSet<T, H> {
    fn deserialize<DE: Deserializer<'de>>(_d: DE) -> Result<Self, DE::Error> {
        Err(<DE::Error as de::Error>::custom("offline serde stub"))
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, _s: S) -> Result<S::Ok, S::Error> {
        Err(<S::Error as ser::Error>::custom("offline serde stub"))
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<DE: Deserializer<'de>>(_d: DE) -> Result<Self, DE::Error> {
        Err(<DE::Error as de::Error>::custom("offline serde stub"))
    }
}

macro_rules! tuple_impls {
    ($(($($n:ident),+))*) => {$(
        impl<$($n: Serialize),+> Serialize for ($($n,)+) {
            fn serialize<S: Serializer>(&self, _s: S) -> Result<S::Ok, S::Error> {
                Err(<S::Error as ser::Error>::custom("offline serde stub"))
            }
        }
        impl<'de, $($n: Deserialize<'de>),+> Deserialize<'de> for ($($n,)+) {
            fn deserialize<DE: Deserializer<'de>>(_d: DE) -> Result<Self, DE::Error> {
                Err(<DE::Error as de::Error>::custom("offline serde stub"))
            }
        }
    )*};
}

tuple_impls!((A)(A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E)(A, B, C, D, E, F));
