//! The `dmsa` command-line tool.
//!
//! ```text
//! dmsa simulate --preset 8day --scale 0.02 --seed 42 --out campaign.json
//! dmsa simulate --preset faulty --fail-prob 0.1 --max-retries 3 --out campaign.json
//! dmsa match    --campaign campaign.json --method rm2 --engine prepared --out matches.json
//! dmsa analyze  --campaign campaign.json [--matches matches.json] --report summary|matrix|temporal|redundancy
//! dmsa compare  --campaign campaign.json
//! ```

use dmsa_cli::run::{
    analyze, compare_methods, run_match, simulate, EngineChoice, FaultKnobs, MatcherChoice,
};
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  dmsa simulate --preset 8day|92day|small|faulty [--scale F] [--seed N]
                [--fail-prob F] [--site-outage F] [--link-outage F]
                [--max-retries N] [--out FILE]
  dmsa match    --campaign FILE --method exact|rm1|rm2|scored[:T]
                [--engine naive|indexed|parallel|prepared] [--out FILE]
  dmsa analyze  --campaign FILE [--matches FILE]
                --report summary|matrix|temporal|redundancy
  dmsa compare  --campaign FILE";

/// Parse `--key value` pairs after the subcommand.
fn flags(args: &[String]) -> Result<HashMap<&str, &str>, String> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected a --flag, got {:?}", args[i]))?;
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("--{key} needs a value"))?;
        map.insert(key, value.as_str());
        i += 2;
    }
    Ok(map)
}

fn dispatch(args: &[String]) -> Result<(), String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err("no subcommand".into());
    };
    let f = flags(rest)?;
    let read = |key: &str| -> Result<String, String> {
        let path = f.get(key).ok_or_else(|| format!("--{key} is required"))?;
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))
    };
    let write_or_print = |key: &str, content: &str| -> Result<(), String> {
        match f.get(key) {
            Some(path) => {
                std::fs::write(path, content).map_err(|e| format!("writing {path}: {e}"))?;
                eprintln!("wrote {path} ({} bytes)", content.len());
                Ok(())
            }
            None => {
                println!("{content}");
                Ok(())
            }
        }
    };

    match cmd.as_str() {
        "simulate" => {
            let preset = f.get("preset").copied().unwrap_or("small");
            let scale: f64 = f
                .get("scale")
                .map(|s| s.parse().map_err(|e| format!("bad --scale: {e}")))
                .transpose()?
                .unwrap_or(0.02);
            let seed: u64 = f
                .get("seed")
                .map(|s| s.parse().map_err(|e| format!("bad --seed: {e}")))
                .transpose()?
                .unwrap_or(42);
            let opt_f64 = |key: &str| -> Result<Option<f64>, String> {
                f.get(key)
                    .map(|s| s.parse().map_err(|e| format!("bad --{key}: {e}")))
                    .transpose()
            };
            let knobs = FaultKnobs {
                fail_prob: opt_f64("fail-prob")?,
                site_outage: opt_f64("site-outage")?,
                link_outage: opt_f64("link-outage")?,
                max_retries: f
                    .get("max-retries")
                    .map(|s| s.parse().map_err(|e| format!("bad --max-retries: {e}")))
                    .transpose()?,
            };
            let json = simulate(preset, scale, seed, knobs)?;
            write_or_print("out", &json)
        }
        "match" => {
            let campaign = read("campaign")?;
            let method = MatcherChoice::parse(f.get("method").copied().unwrap_or("exact"))?;
            let engine = EngineChoice::parse(f.get("engine").copied().unwrap_or("prepared"))?;
            let (json, stats) = run_match(&campaign, method, engine)?;
            eprintln!("{stats}");
            write_or_print("out", &json)
        }
        "analyze" => {
            let campaign = read("campaign")?;
            let matches = match f.get("matches") {
                Some(path) => Some(
                    std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?,
                ),
                None => None,
            };
            let report = f.get("report").copied().unwrap_or("summary");
            let out = analyze(&campaign, matches.as_deref(), report)?;
            println!("{out}");
            Ok(())
        }
        "compare" => {
            let campaign = read("campaign")?;
            println!("{}", compare_methods(&campaign)?);
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}")),
    }
}
